"""E2 — Fig. 3: the simple three-state PFA for ``(a c* d) | b``.

Regenerates the figure's content as a table: every labelled transition
with its probability, plus an empirical check — sampled word frequencies
against the analytic word probabilities (they must agree closely, and
total mass must be 1).  The benchmark times PFA construction + sampling.
"""

from __future__ import annotations

from collections import Counter

from repro.automata.distributions import TransitionDistribution
from repro.automata.pfa import build_pfa
from repro.automata.dfa import minimize_dfa, nfa_to_dfa
from repro.automata.nfa import regex_to_nfa
from repro.automata.regex_parser import parse_regex
from repro.automata.sampling import PatternSampler

from conftest import format_table

FIG3_REGEX = "(a c* d) | b"
SAMPLES = 20_000


def build_fig3_pfa():
    dfa = minimize_dfa(nfa_to_dfa(regex_to_nfa(parse_regex(FIG3_REGEX))))
    dist = TransitionDistribution()
    dist.set(dfa.start, "a", 0.6)
    dist.set(dfa.start, "b", 0.4)
    middle = dfa.step(dfa.start, "a")
    dist.set(middle, "c", 0.3)
    dist.set(middle, "d", 0.7)
    return build_pfa(dfa, dist)


def test_fig3_pfa(benchmark, emit):
    pfa = build_fig3_pfa()

    # Structural rows (the figure's labelled arcs).
    arc_rows = []
    for state in range(pfa.num_states):
        for transition in pfa.outgoing(state):
            arc_rows.append(
                (
                    pfa.label(transition.source),
                    transition.symbol,
                    pfa.label(transition.target),
                    f"{transition.probability:.1f}",
                )
            )

    # Empirical vs analytic word frequencies.
    sampler = PatternSampler(pfa, seed=3)
    counts: Counter[tuple[str, ...]] = Counter()
    for _ in range(SAMPLES):
        counts[sampler.sample_to_final().symbols] += 1
    freq_rows = []
    for word, count in counts.most_common(6):
        analytic = pfa.word_probability(word)
        freq_rows.append(
            (
                " ".join(word),
                f"{count / SAMPLES:.4f}",
                f"{analytic:.4f}",
                f"{abs(count / SAMPLES - analytic):.4f}",
            )
        )
    total_mass = sum(
        pfa.word_probability(word) for word in counts
    )

    text = (
        format_table(["from", "symbol", "to", "P"], arc_rows)
        + "\n\nsampled word frequencies ("
        + f"{SAMPLES} walks):\n"
        + format_table(
            ["word", "empirical", "analytic", "|diff|"], freq_rows
        )
        + f"\n\nanalytic mass of sampled support: {total_mass:.4f}"
        + "\nEq. (1) stochasticity: validated at construction"
    )
    emit("E2_fig3_simple_pfa", text)

    for word, count in counts.most_common(3):
        assert abs(count / SAMPLES - pfa.word_probability(word)) < 0.02

    def construct_and_sample():
        fresh = build_fig3_pfa()
        PatternSampler(fresh, seed=0).sample_many(50, 8)

    benchmark(construct_and_sample)
