"""E9 — future work: replicated test patterns reduce effectiveness.

The paper: "pTest currently does not consider the problems of that the
replicated test patterns can reduce the effectiveness of pTest."  This
bench quantifies the replication: duplication rate of generated batches
as n and s grow, compared against the analytic expectation from the
PFA's word distribution, plus the coverage a deduplicated batch retains.
The benchmark times duplication analysis of a large batch.
"""

from __future__ import annotations

from repro.analysis.coverage import pattern_transition_coverage
from repro.analysis.metrics import duplication_rate, unique_pattern_fraction
from repro.ptest.generator import PatternGenerator
from repro.ptest.pcore_model import pcore_pfa

from conftest import format_table


def _batch(count: int, size: int, seed: int = 0):
    generator = PatternGenerator.from_pfa(pcore_pfa(), seed=seed)
    return [pattern.symbols for pattern in generator.generate_batch(count, size)]


def test_pattern_duplication(benchmark, emit):
    pfa = pcore_pfa()
    rows = []
    for count in (4, 16, 64, 256):
        for size in (3, 6, 12):
            batch = _batch(count, size)
            deduped = list({tuple(p) for p in batch})
            full_cov = pattern_transition_coverage(pfa, batch).fraction
            dedup_cov = pattern_transition_coverage(pfa, deduped).fraction
            rows.append(
                (
                    count,
                    size,
                    f"{100 * duplication_rate(batch):.0f}%",
                    len(deduped),
                    f"{100 * full_cov:.0f}%",
                    f"{100 * dedup_cov:.0f}%",
                )
            )

    # Analytic explanation: how many distinct lifecycles even exist per
    # length (path counting over the automaton).
    from repro.automata.operations import count_words_by_length, pfa_support_dfa

    counts = count_words_by_length(pfa_support_dfa(pfa), 12)
    count_rows = [(length, counts[length]) for length in range(2, 13)]

    text = (
        "distinct lifecycles that exist, by length (path counting):\n"
        + format_table(["length", "distinct words"], count_rows)
        + "\n\npattern replication in generated batches (pCore PFA, Fig. 5 PD):\n"
        + format_table(
            [
                "n (batch)",
                "s (size)",
                "duplicates",
                "distinct",
                "coverage",
                "coverage after dedup",
            ],
            rows,
        )
        + "\n\nshape: short patterns replicate heavily (few short lifecycle"
        + "\nwords exist, and high-probability ones repeat); dedup keeps"
        + "\ncoverage identical while shrinking the command budget — the"
        + "\neffectiveness the paper's future work worries about."
    )
    emit("E9_pattern_duplication", text)

    short = duplication_rate(_batch(64, 3))
    long = duplication_rate(_batch(64, 12))
    assert short > long  # shorter patterns replicate more

    big = _batch(256, 8)

    def analyse():
        duplication_rate(big)
        unique_pattern_fraction(big)
        pattern_transition_coverage(pfa, big)

    benchmark(analyse)
