"""A4 — ablation: detector thresholds (the design choice DESIGN.md
calls out).

The starvation monitor's ``progress_window`` trades detection latency
against false positives: too small and ordinary priority waits are
flagged (the low-priority quicksort task legitimately waits thousands
of ticks behind its betters); too large and real starvation is slow to
surface.  This bench sweeps the window on a healthy 16-task stress run
(false-positive rate) and on the lost-wakeup fault (time to detect).
The benchmark times one healthy sweep entry.
"""

from __future__ import annotations

import dataclasses

from repro.ptest.detector import AnomalyKind
from repro.workloads.scenarios import producer_consumer_scenario, stress_case1

from conftest import format_table

WINDOWS = (200, 800, 3_000, 12_000, 50_000)


def _healthy_run(window: int):
    test = stress_case1(seed=0, buggy_gc=False, max_ticks=15_000)
    test.config = dataclasses.replace(test.config, progress_window=window)
    return test.run()


def _faulty_run(window: int):
    test = producer_consumer_scenario(seed=0, faulty=True, max_ticks=40_000)
    test.config = dataclasses.replace(test.config, progress_window=window)
    return test.run()


def test_detector_threshold_ablation(benchmark, emit):
    rows = []
    for window in WINDOWS:
        healthy = _healthy_run(window)
        false_positive = (
            healthy.report.primary.kind.value if healthy.found_bug else "-"
        )
        faulty = _faulty_run(window)
        found_starvation = (
            faulty.found_bug
            and faulty.report.primary.kind is AnomalyKind.STARVATION
        )
        rows.append(
            (
                window,
                false_positive,
                "yes" if found_starvation else "missed",
                faulty.report.primary.detected_at if found_starvation else "-",
            )
        )

    text = (
        "starvation progress_window sweep:\n"
        + format_table(
            [
                "window (ticks)",
                "healthy stress flags",
                "lost-wakeup found",
                "detect tick",
            ],
            rows,
        )
        + "\n\nshape: small windows false-positive on the healthy stress"
        + "\n(low-priority tasks legitimately wait behind 15 higher ones);"
        + "\nlarge windows stay sound but pay proportionally higher"
        + "\ndetection latency on the real starvation.  The case-study"
        + "\nconfigs pick windows above the workload's natural latency."
    )
    emit("A4_detector_thresholds", text)

    by_window = {row[0]: row for row in rows}
    assert by_window[200][1] != "-"  # tight window false-positives
    assert by_window[50_000][1] == "-"  # generous window is sound
    assert by_window[3_000][2] == "yes"  # and still catches the fault

    benchmark.pedantic(lambda: _healthy_run(12_000), rounds=2, iterations=1)
