"""E1 — Table I: kernel services of pCore for task management.

Regenerates the service table with live verification: every service is
exercised against the kernel (success path and the documented failure
path) and the row reports its observed semantics.  The benchmark times
a full service round-trip through the kernel.
"""

from __future__ import annotations

from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.services import ServiceCode, ServiceRequest, ServiceStatus
from repro.pcore.tcb import TaskState

from conftest import format_table


def _fresh() -> PCoreKernel:
    return PCoreKernel(config=KernelConfig())


def _svc(kernel, service, **kwargs):
    return kernel.execute_service(ServiceRequest(service=service, **kwargs))


def _verify_tc() -> str:
    kernel = _fresh()
    result = _svc(kernel, ServiceCode.TC, priority=1)
    assert result.ok and kernel.tasks[result.value].state is TaskState.READY
    limit = [_svc(kernel, ServiceCode.TC, priority=2 + i) for i in range(16)]
    assert limit[-1].status is ServiceStatus.TASK_LIMIT
    return "creates READY task; enforces 16-task limit + unique priority"


def _verify_td() -> str:
    kernel = _fresh()
    tid = _svc(kernel, ServiceCode.TC, priority=1).value
    assert _svc(kernel, ServiceCode.TD, target=tid).ok
    assert tid not in kernel.tasks
    assert _svc(kernel, ServiceCode.TD, target=tid).status is ServiceStatus.NO_SUCH_TASK
    return "deletes task, reaps memory; NO_SUCH_TASK on dead tid"


def _verify_ts() -> str:
    kernel = _fresh()
    tid = _svc(kernel, ServiceCode.TC, priority=1).value
    assert _svc(kernel, ServiceCode.TS, target=tid).ok
    assert kernel.tasks[tid].state is TaskState.SUSPENDED
    assert (
        _svc(kernel, ServiceCode.TS, target=tid).status
        is ServiceStatus.ILLEGAL_STATE
    )
    return "READY/RUNNING/BLOCKED -> SUSPENDED; double-suspend illegal"


def _verify_tr() -> str:
    kernel = _fresh()
    tid = _svc(kernel, ServiceCode.TC, priority=1).value
    assert (
        _svc(kernel, ServiceCode.TR, target=tid).status
        is ServiceStatus.ILLEGAL_STATE
    )
    _svc(kernel, ServiceCode.TS, target=tid)
    assert _svc(kernel, ServiceCode.TR, target=tid).ok
    return "only SUSPENDED -> READY (paper's precondition enforced)"


def _verify_tch() -> str:
    kernel = _fresh()
    tid = _svc(kernel, ServiceCode.TC, priority=1).value
    other = _svc(kernel, ServiceCode.TC, priority=2).value
    assert _svc(kernel, ServiceCode.TCH, target=tid, priority=9).ok
    assert kernel.tasks[tid].priority == 9
    clash = _svc(kernel, ServiceCode.TCH, target=other, priority=9)
    assert clash.status is ServiceStatus.BAD_PRIORITY
    return "changes priority, reorders ready queue; uniqueness kept"


def _verify_ty() -> str:
    kernel = _fresh()
    tid = _svc(kernel, ServiceCode.TC, priority=1).value
    kernel.step(0)
    result = _svc(kernel, ServiceCode.TY)
    assert result.ok and result.value == tid and tid not in kernel.tasks
    return "terminates the current running task"


VERIFIERS = {
    "TC": ("task_create", "Create a task", _verify_tc),
    "TD": ("task_delete", "Delete a task", _verify_td),
    "TS": ("task_suspend", "Suspend a task", _verify_ts),
    "TR": ("task_resume", "Resume a task", _verify_tr),
    "TCH": ("task_chanprio", "Change the priority of a task", _verify_tch),
    "TY": ("task_yield", "Terminate the current running task", _verify_ty),
}


def test_table1_service_matrix(benchmark, emit):
    """Regenerate Table I (verified) and time a TC+TD round-trip."""
    rows = []
    for abbr, (name, paper_text, verifier) in VERIFIERS.items():
        observed = verifier()
        rows.append((name, abbr, paper_text, observed))
    emit(
        "E1_table1_services",
        format_table(
            ["service", "abbr", "paper description", "verified semantics"],
            rows,
        ),
    )

    kernel = _fresh()

    def roundtrip():
        result = _svc(kernel, ServiceCode.TC, priority=1)
        _svc(kernel, ServiceCode.TD, target=result.value)

    benchmark(roundtrip)
