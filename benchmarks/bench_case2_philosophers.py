"""E6 — Test case 2: the dining-philosophers deadlock.

Regenerates the paper's second fault-discovery study and extends it
into the merge-op ablation DESIGN.md calls for: detection rate and
time-to-detection per merge policy on the buggy (cyclic-acquisition)
workload, with the ordered-acquisition control staying clean under
every policy.  The benchmark times one cyclic-op deadlock discovery.
"""

from __future__ import annotations

import statistics

from repro.ptest.detector import AnomalyKind
from repro.workloads.scenarios import philosophers_case2

from conftest import format_table

OPS = ("cyclic", "round_robin", "random", "burst", "weighted")
SEEDS = range(8)


def test_case2_philosophers(benchmark, emit):
    rows = []
    cyclic_found = 0
    for op in OPS:
        found, ticks = 0, []
        for seed in SEEDS:
            result = philosophers_case2(seed=seed, op=op).run()
            if (
                result.found_bug
                and result.report.primary.kind is AnomalyKind.DEADLOCK
            ):
                found += 1
                ticks.append(result.report.primary.detected_at)
        if op == "cyclic":
            cyclic_found = found
        control = philosophers_case2(seed=0, op=op, ordered=True).run()
        rows.append(
            (
                op,
                f"{found}/{len(list(SEEDS))}",
                f"{statistics.mean(ticks):.0f}" if ticks else "-",
                "clean" if not control.found_bug else "FALSE POSITIVE",
            )
        )

    sample = philosophers_case2(seed=0, op="cyclic").run()
    records = "\n".join(
        f"  {record.describe()}" for record in sample.report.state_records
    )
    text = (
        "buggy philosophers (cyclic fork order), 3 tasks / 3 forks:\n"
        + format_table(
            ["merge op", "deadlocks found", "mean detect tick", "ordered control"],
            rows,
        )
        + "\n\nsample detection (cyclic op, seed 0):"
        + f"\n  {sample.report.primary.description}"
        + "\nstate records (Definition 2):\n"
        + records
        + "\n\nshape vs paper: the forced cyclic execution sequences drive"
        + "\nall three tasks into the wait-for cycle; ordered acquisition"
        + "\n(the fix) never deadlocks under any policy."
    )
    emit("E6_case2_philosophers", text)

    assert cyclic_found == len(list(SEEDS))

    benchmark.pedantic(
        lambda: philosophers_case2(seed=0, op="cyclic").run(),
        rounds=3,
        iterations=1,
    )
