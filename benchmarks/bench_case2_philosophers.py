"""E6 — Test case 2: the dining-philosophers deadlock.

Regenerates the paper's second fault-discovery study and extends it
into the merge-op ablation DESIGN.md calls for: detection rate and
time-to-detection per merge policy on the buggy (cyclic-acquisition)
workload, with the ordered-acquisition control staying clean under
every policy.  The benchmark times one cyclic-op deadlock discovery.
"""

from __future__ import annotations

import os
import statistics

from repro.ptest.campaign import Campaign
from repro.ptest.detector import AnomalyKind
from repro.workloads.scenarios import philosophers_case2

from conftest import format_table

OPS = ("cyclic", "round_robin", "random", "burst", "weighted")
SEEDS = range(8)
WORKERS = min(4, os.cpu_count() or 1)


def test_case2_philosophers(benchmark, emit):
    # One campaign over every (op, seed) cell, dispatched through the
    # batched work-queue executor as registry ScenarioRef variants; a
    # second, tiny one for the ordered controls.
    sweep = Campaign(seeds=tuple(SEEDS), workers=WORKERS)
    for op in OPS:
        sweep.add_scenario(op, "philosophers", op=op)
    sweep.run()
    controls = Campaign(seeds=(0,), workers=WORKERS)
    for op in OPS:
        controls.add_scenario(op, "philosophers", op=op, ordered=True)
    controls.run()

    rows = []
    cyclic_found = 0
    for op in OPS:
        detections = [
            result
            for result in sweep.results[op]
            if result.found_bug
            and result.report.primary.kind is AnomalyKind.DEADLOCK
        ]
        found = len(detections)
        ticks = [r.report.primary.detected_at for r in detections]
        if op == "cyclic":
            cyclic_found = found
        control = controls.results[op][0]
        rows.append(
            (
                op,
                f"{found}/{len(list(SEEDS))}",
                f"{statistics.mean(ticks):.0f}" if ticks else "-",
                "clean" if not control.found_bug else "FALSE POSITIVE",
            )
        )

    # The cyclic/seed-0 cell is deterministic; reuse the sweep's run.
    sample = sweep.results["cyclic"][0]
    records = "\n".join(
        f"  {record.describe()}" for record in sample.report.state_records
    )
    text = (
        "buggy philosophers (cyclic fork order), 3 tasks / 3 forks:\n"
        + format_table(
            ["merge op", "deadlocks found", "mean detect tick", "ordered control"],
            rows,
        )
        + "\n\nsample detection (cyclic op, seed 0):"
        + f"\n  {sample.report.primary.description}"
        + "\nstate records (Definition 2):\n"
        + records
        + "\n\nshape vs paper: the forced cyclic execution sequences drive"
        + "\nall three tasks into the wait-for cycle; ordered acquisition"
        + "\n(the fix) never deadlocks under any policy."
    )
    emit("E6_case2_philosophers", text)

    assert cyclic_found == len(list(SEEDS))

    benchmark.pedantic(
        lambda: philosophers_case2(seed=0, op="cyclic").run(),
        rounds=3,
        iterations=1,
    )
