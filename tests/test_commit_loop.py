"""The array-native commit loop's bit-identity contract.

:class:`~repro.ptest.committer.Committer` promises that walking an
array-built :class:`~repro.ptest.patterns.MergedPattern` by column
cursor produces *exactly* the run the classic
:class:`~repro.ptest.patterns.PatternCommand` walk produces — same
requests in the same order, same replies, same state records, same
traces, same stall/retry behaviour — while never materialising the
command list.  These tests sweep that promise over the op × lockstep ×
noise × mailbox-stall matrix against a deterministic echo bridge, in
both numpy and ``REPRO_NO_NUMPY`` modes, then cover the satellites
around it: the recorder's no-materialisation hot path, the worker-side
:class:`~repro.ptest.generator.SharedMergeBatch` dispatch (rounds
bit-identical to per-cell merges under any consumption interleaving),
and end-to-end campaign/table row identity with ``merge_batch`` on,
off and auto.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.automata.batch import (
    NO_NUMPY_ENV,
    BatchSampler,
    numpy_available,
)
from repro.automata.compiled import CompiledPFA
from repro.errors import ConfigError
from repro.pcore.services import ServiceCode, ServiceResult, ServiceStatus
from repro.ptest.campaign import Campaign
from repro.ptest.committer import Committer
from repro.ptest.executor import CellExecutor, WorkCell
from repro.ptest.generator import SharedMergeBatch, SharedPatternBatch
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern
from repro.ptest.pcore_model import pcore_pfa
from repro.ptest.pool import (
    clear_worker_cache,
    make_batch_table,
    run_table_batch,
    shutdown_pools,
)
from repro.ptest.recording import ProcessStateRecorder, StateRecord
from repro.sim.trace import Tracer
from repro.workloads.registry import scenario_ref

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="needs numpy for array-built merges"
)


@pytest.fixture(scope="module")
def compiled() -> CompiledPFA:
    return CompiledPFA.from_pfa(pcore_pfa())


class EchoBridge:
    """Deterministic ``BridgeMaster`` stand-in for committer tests.

    Issued requests are answered ``OK`` after sitting ``reply_delay``
    extra pumps (0 = next step, like the real mailbox round trip); TC
    replies carry fresh tids so pair bindings evolve as in a real run.
    ``capacity`` bounds the in-flight mailbox, so a small value forces
    the committer's stall/retry path.
    """

    def __init__(
        self, capacity: int | None = None, reply_delay: int = 0
    ) -> None:
        self.capacity = capacity
        self.reply_delay = reply_delay
        self.now = 0
        self.outstanding: dict = {}
        self._pending: list = []  # [age, bound request]
        self._next_seq = 1
        self._next_tid = 1

    def issue(self, request):
        if (
            self.capacity is not None
            and len(self._pending) >= self.capacity
        ):
            return None
        sequence = self._next_seq
        self._next_seq += 1
        bound = replace(request, sequence=sequence)
        self.outstanding[sequence] = bound
        self._pending.append([0, bound])
        return sequence

    def pump(self) -> list:
        arrived = []
        keep = []
        for entry in self._pending:
            entry[0] += 1
            if entry[0] > self.reply_delay:
                bound = entry[1]
                value = None
                if bound.service is ServiceCode.TC:
                    value = self._next_tid
                    self._next_tid += 1
                del self.outstanding[bound.sequence]
                arrived.append(
                    ServiceResult(
                        request=bound,
                        status=ServiceStatus.OK,
                        value=value,
                        completed_at=self.now,
                    )
                )
            else:
                keep.append(entry)
        self._pending = keep
        return arrived


def build_merged(
    compiled: CompiledPFA,
    op: str,
    slot: int,
    per_merge: int = 4,
    size: int = 24,
    chunk: int = 3,
    merge_seed: int = 77,
) -> MergedPattern:
    """One deterministic merge per ``(op, slot)`` — array-built with
    numpy, eager (scalar-sampled, scalar-merged) without."""
    seeds = [(1 << 40) + 7919 * slot + index for index in range(per_merge)]
    batch = BatchSampler(compiled, seeds, on_final="restart").sample_batch(
        size
    )
    patterns = []
    for pattern_id in range(per_merge):
        row = batch.row(pattern_id)
        if row is None:
            drawn = batch.pattern(pattern_id)
            patterns.append(
                TestPattern(
                    pattern_id=pattern_id,
                    symbols=drawn.symbols,
                    states=drawn.states,
                    log_probability=drawn.log_probability,
                )
            )
        else:
            patterns.append(
                TestPattern.from_ids(
                    pattern_id=pattern_id,
                    symbol_ids=row.symbol_ids,
                    alphabet=row.alphabet,
                    state_ids=row.state_ids,
                    log_probability=row.log_probability,
                )
            )
    return PatternMerger(op=op, seed=merge_seed, chunk=chunk).merge(patterns)


def drive(
    merged: MergedPattern,
    bridge_kw: dict | None = None,
    lockstep: bool = True,
    noise_ticks: int = 0,
    recorder: ProcessStateRecorder | None = None,
    tracer: Tracer | None = None,
) -> Committer:
    committer = Committer(
        bridge=EchoBridge(**(bridge_kw or {})),
        merged=merged,
        recorder=recorder,
        tracer=tracer,
        lockstep=lockstep,
        noise_ticks=noise_ticks,
        noise_seed=13,
    )
    now = 0
    while not committer.is_halted():
        committer.step(now)
        now += 1
        assert now < 10_000, "commit loop failed to halt"
    return committer


def assert_runs_identical(column_merged, eager_merged, **drive_kw):
    """Drive both walks and assert every observable is bit-identical;
    the column walk must finish with ``commands`` unmaterialised."""
    runs = {}
    for label, merged in (
        ("column", column_merged),
        ("command", eager_merged),
    ):
        recorder = ProcessStateRecorder()
        tracer = Tracer()
        committer = drive(
            merged, recorder=recorder, tracer=tracer, **drive_kw
        )
        runs[label] = (committer, recorder, tracer)
    column, column_rec, column_tr = runs["column"]
    command, command_rec, command_tr = runs["command"]
    assert column.results == command.results
    assert column.error_results == command.error_results
    assert (
        column.issued,
        column.cursor,
        column.steps,
        column.stall_events,
    ) == (
        command.issued,
        command.cursor,
        command.steps,
        command.stall_events,
    )
    assert column_rec.snapshot_columns() == command_rec.snapshot_columns()
    assert column_rec.snapshot() == command_rec.snapshot()
    assert column_tr.dump() == command_tr.dump()
    assert column_merged._commands is None, (
        "column walk materialised the command list"
    )
    return column


@requires_numpy
class TestColumnWalkEquivalence:
    """Array-merged column walk vs the PatternCommand reference walk."""

    @pytest.mark.parametrize("op", ["round_robin", "cyclic"])
    @pytest.mark.parametrize(
        "lockstep", [True, False], ids=["lockstep", "fire-and-forget"]
    )
    @pytest.mark.parametrize("noise_ticks", [0, 3], ids=["quiet", "noisy"])
    @pytest.mark.parametrize(
        "bridge_kw",
        [{}, {"capacity": 1, "reply_delay": 1}],
        ids=["roomy-mailbox", "stalling-mailbox"],
    )
    def test_matrix(self, compiled, op, lockstep, noise_ticks, bridge_kw):
        column = build_merged(compiled, op, slot=5)
        twin = build_merged(compiled, op, slot=5)
        assert column.pattern_ids is not None
        eager = MergedPattern(
            commands=twin.commands, op=twin.op, sources=twin.sources
        )
        committer = assert_runs_identical(
            column,
            eager,
            bridge_kw=bridge_kw,
            lockstep=lockstep,
            noise_ticks=noise_ticks,
        )
        if bridge_kw and noise_ticks == 0:
            # The tight mailbox must actually exercise stall/retry.
            assert committer.stall_events > 0

    def test_fallback_walk_matches_under_env_mask(
        self, compiled, monkeypatch
    ):
        """`REPRO_NO_NUMPY` runs sample, merge and commit on the scalar
        plane — the whole pipeline must still be bit-identical."""
        column = build_merged(compiled, "cyclic", slot=9)
        assert column.pattern_ids is not None
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        fallback = build_merged(compiled, "cyclic", slot=9)
        assert fallback.pattern_ids is None
        assert_runs_identical(column, fallback, lockstep=False)


class TestHandBuiltColumns:
    """Column walks over hand-built ``from_arrays`` merges — plain-list
    columns, so these run (and exercise the cursor walk) even on the
    no-numpy CI leg."""

    ALPHABET = ("TC", "TS", "TR", "TD")

    def _hand_built(self) -> tuple[MergedPattern, MergedPattern]:
        ids = list(range(len(self.ALPHABET)))
        pattern_ids = [0, 1, 0, 1, 0, 1, 0, 1]
        symbol_ids = [0, 0, 1, 1, 2, 2, 3, 3]
        sequences = [1, 1, 2, 2, 3, 3, 4, 4]

        def sources():
            return [
                TestPattern.from_ids(
                    pattern_id=pair, symbol_ids=ids, alphabet=self.ALPHABET
                )
                for pair in (0, 1)
            ]

        column = MergedPattern.from_arrays(
            op="round_robin",
            sources=sources(),
            pattern_ids=pattern_ids,
            sequences=sequences,
            symbol_ids=symbol_ids,
            alphabet=self.ALPHABET,
        )
        commands = [
            PatternCommand(
                symbol=self.ALPHABET[symbol_id],
                pattern_id=pattern_id,
                sequence_in_pattern=sequence,
                position=position,
            )
            for position, (pattern_id, sequence, symbol_id) in enumerate(
                zip(pattern_ids, sequences, symbol_ids)
            )
        ]
        eager = MergedPattern(
            commands=commands, op="round_robin", sources=sources()
        )
        return column, eager

    @pytest.mark.parametrize(
        "lockstep", [True, False], ids=["lockstep", "fire-and-forget"]
    )
    def test_walks_match(self, lockstep):
        column, eager = self._hand_built()
        assert_runs_identical(column, eager, lockstep=lockstep)

    def test_stall_retry_and_done_never_materialise(self):
        """Satellite regression: a full run including mailbox stalls —
        stalled-step retry and the ``done`` check included — reads only
        cursor state, never the command list or the source tuples."""
        column, eager = self._hand_built()
        committer = assert_runs_identical(
            column,
            eager,
            bridge_kw={"capacity": 1, "reply_delay": 1},
            lockstep=False,
        )
        assert committer.stall_events > 0
        assert column._commands is None
        # A fresh run driven alone (the record-equality comparison
        # above materialises tuples through StateRecord.__eq__): a
        # clean stall-and-retry run touches neither the command list
        # nor any source pattern's symbol tuple.
        fresh, _ = self._hand_built()
        recorder = ProcessStateRecorder()
        drive(
            fresh,
            bridge_kw={"capacity": 1, "reply_delay": 1},
            lockstep=False,
            recorder=recorder,
        )
        assert recorder.snapshot_columns()[2] == [0, 0]
        assert fresh._commands is None
        assert all(
            source._symbols is None for source in fresh.sources
        ), "a clean run materialised a source pattern's symbol tuple"

    def test_unknown_symbol_raises_at_the_step_reached(self):
        alphabet = ("TC", "XQ")
        source = TestPattern.from_ids(
            pattern_id=0, symbol_ids=[0, 1], alphabet=alphabet
        )
        merged = MergedPattern.from_arrays(
            op="round_robin",
            sources=[source],
            pattern_ids=[0, 0],
            sequences=[1, 2],
            symbol_ids=[0, 1],
            alphabet=alphabet,
        )
        committer = Committer(
            bridge=EchoBridge(), merged=merged, lockstep=False
        )
        committer.step(0)  # the TC issues fine
        assert committer.issued == 1
        with pytest.raises(
            ConfigError, match="symbol 'XQ' is not a service"
        ):
            committer.step(1)


class TestRecorderLaziness:
    """Satellite regression: the snapshot hot path must not re-
    materialise tuples on lazy array-backed patterns."""

    ALPHABET = ("TC", "TS", "TR", "TD")

    def test_recording_stays_on_the_id_plane(self):
        pattern = TestPattern.from_ids(
            pattern_id=0, symbol_ids=[0, 1, 2, 3], alphabet=self.ALPHABET
        )
        recorder = ProcessStateRecorder()
        recorder.register_pair(pattern)
        recorder.note_issue(0, "m0.1")
        recorder.note_slave_state(0, "s:ready", tid=3)
        record = recorder.record(0)
        snapshot = recorder.snapshot()
        assert recorder.snapshot_columns() == ([0], [1], [3])
        assert pattern._symbols is None, (
            "record()/snapshot() forced the pattern's symbol tuple"
        )
        assert record._pattern is None and record._remaining is None
        assert all(
            r._pattern is None and r._remaining is None for r in snapshot
        )

    def test_lazy_record_equals_its_eager_twin(self):
        pattern = TestPattern.from_ids(
            pattern_id=0, symbol_ids=[0, 1, 2, 3], alphabet=self.ALPHABET
        )
        recorder = ProcessStateRecorder()
        recorder.register_pair(pattern)
        recorder.note_issue(0, "m0.1")
        recorder.note_slave_state(0, "s:ready")
        record = recorder.record(0)
        eager = StateRecord(
            pair_id=0,
            master_state="m0.1",
            slave_state="s:ready",
            pattern=self.ALPHABET,
            sequence_number=1,
            remaining=("TS", "TR", "TD"),
        )
        assert record == eager
        assert hash(record) == hash(eager)
        assert record.describe() == eager.describe()
        # Reading materialises (and caches) exactly the eager values.
        assert record.pattern == self.ALPHABET
        assert record.remaining == ("TS", "TR", "TD")


class TestSharedMergeBatch:
    """The worker-side cross-cell merge dispatch."""

    def test_interleaved_cells_match_their_own_merges(self, compiled):
        seeds = (2**40 + 5, 11, -(2**35))
        merger_seeds = (301, 302, 303)
        size, count, op, chunk = 8, 3, "cyclic", 2
        shared = SharedPatternBatch(pfa=compiled, seeds=seeds, size=size)
        merges = SharedMergeBatch(
            shared=shared,
            merger_seeds=merger_seeds,
            op=op,
            chunk=chunk,
            pattern_count=count,
        )
        streams = [merges.stream(cell) for cell in range(len(seeds))]
        # Reference: each cell samples its own stream and merges its
        # own rounds under its own merger seed.
        reference = SharedPatternBatch(pfa=compiled, seeds=seeds, size=size)
        ref_streams = [reference.stream(cell) for cell in range(len(seeds))]
        order = [0, 0, 2, 1, 0, 1, 2]
        expected = {
            cell: [
                PatternMerger(
                    op=op, seed=merger_seeds[cell], chunk=chunk
                ).merge(ref_streams[cell].generate_batch(count, size))
                for _ in range(order.count(cell))
            ]
            for cell in range(len(seeds))
        }
        progress = {cell: 0 for cell in range(len(seeds))}
        # Drain in a deliberately unfair order: each cell's merges must
        # equal its own generate+merge sequence regardless.
        for cell in order:
            merged = streams[cell].next_merged()
            want = expected[cell][progress[cell]]
            assert merged == want
            assert merged.describe() == want.describe()
            progress[cell] += 1
        assert [stream.rounds for stream in streams] == [
            order.count(cell) for cell in range(len(seeds))
        ]

    def test_prime_premerges_without_changing_output(self, compiled):
        seeds = (2**40 + 5, 11)

        def fresh():
            return SharedMergeBatch(
                shared=SharedPatternBatch(pfa=compiled, seeds=seeds, size=6),
                merger_seeds=(41, 42),
                op="round_robin",
                chunk=1,
                pattern_count=2,
            )

        primed, lazy = fresh(), fresh()
        primed.prime(2)
        for cell in range(len(seeds)):
            for _ in range(3):
                assert primed.next_merged(cell) == lazy.next_merged(cell)

    def test_validation(self, compiled):
        shared = SharedPatternBatch(pfa=compiled, seeds=(1, 2), size=4)
        with pytest.raises(ConfigError, match="pattern count must be >= 1"):
            SharedMergeBatch(
                shared=shared,
                merger_seeds=(1, 2),
                op="round_robin",
                chunk=1,
                pattern_count=0,
            )
        with pytest.raises(
            ConfigError, match="2 cells but 3 merger seeds"
        ):
            SharedMergeBatch(
                shared=shared,
                merger_seeds=(1, 2, 3),
                op="round_robin",
                chunk=1,
                pattern_count=1,
            )

    def test_merge_batch_seed_count_mismatch(self):
        merger = PatternMerger(op="round_robin", seed=1, chunk=1)
        group = [TestPattern(pattern_id=0, symbols=("TC",))]
        with pytest.raises(ConfigError, match="1 groups but 2 seeds"):
            merger.merge_batch([group], seeds=(5, 6))

    def test_stream_matches_guard(self, compiled):
        shared = SharedPatternBatch(pfa=compiled, seeds=(21, 22), size=5)
        merges = SharedMergeBatch(
            shared=shared,
            merger_seeds=(7, 8),
            op="cyclic",
            chunk=2,
            pattern_count=3,
        )
        stream = merges.stream(0)
        good = PatternMerger(op="cyclic", seed=7, chunk=2)
        pfa = shared.sampler.compiled
        assert stream.matches(pfa, 21, good, 3, 5)
        # Every parameter that feeds the merge must agree.
        assert not stream.matches(pfa, 22, good, 3, 5)
        other = CompiledPFA.from_pfa(pcore_pfa())
        assert not stream.matches(other, 21, good, 3, 5)
        assert not stream.matches(pfa, 21, replace(good, seed=8), 3, 5)
        assert not stream.matches(
            pfa, 21, replace(good, op="round_robin"), 3, 5
        )
        assert not stream.matches(pfa, 21, replace(good, chunk=3), 3, 5)
        assert not stream.matches(pfa, 21, good, 2, 5)
        assert not stream.matches(pfa, 21, good, 3, 6)

    def test_harness_ignores_mismatched_merge_stream(self, compiled):
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        plain = ref(5).run()
        test = ref(5)
        merges = SharedMergeBatch(
            shared=SharedPatternBatch(pfa=compiled, seeds=(5,), size=4),
            merger_seeds=(6,),
            op="round_robin",
            chunk=1,
            pattern_count=1,
        )
        stream = merges.stream(0)
        test.merge_override = stream
        # The guard rejects the foreign automaton; the run falls back
        # to its own generate+merge, bit-identically, consuming nothing.
        assert test.run() == plain
        assert stream.rounds == 0


class TestWorkerMergeBatch:
    """`run_table_batch`'s merge_batch knob, in process."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_worker_cache()
        yield
        clear_worker_cache()

    def _table(self):
        refs = [scenario_ref("clean_spin", tasks=2, total_steps=40)] * 4 + [
            scenario_ref("philosophers", op="cyclic")
        ] * 3
        seeds = [0, 1, 2, 3, 10, 11, 12]
        return make_batch_table(refs, seeds)

    def test_rows_identical_across_merge_batch_settings(self):
        table, jobs = self._table()
        baseline = run_table_batch(table, jobs, None, False)
        settings = [False, None]
        if numpy_available():
            settings.append(True)
        for merge_batch in settings:
            clear_worker_cache()
            assert run_table_batch(table, jobs, None, merge_batch) == (
                baseline
            ), f"rows diverged at merge_batch={merge_batch}"

    def test_sampling_off_disables_merge_batching(self):
        table, jobs = self._table()
        sampling_off = run_table_batch(table, jobs, False, None)
        clear_worker_cache()
        assert sampling_off == run_table_batch(table, jobs, None, False)

    def test_explicit_merge_batch_requires_numpy(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        table, jobs = self._table()
        with pytest.raises(
            ConfigError, match=r"run_table_batch\(merge_batch=True\)"
        ):
            run_table_batch(table, jobs, None, True)

    def test_executor_rejects_explicit_merge_batch(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        executor = CellExecutor(workers=2, merge_batch=True)
        builders = {"spin": scenario_ref("clean_spin", tasks=2)}
        cells = [WorkCell(variant="spin", seed=0)]
        with pytest.raises(
            ConfigError, match=r"CellExecutor\(merge_batch=True\)"
        ):
            executor.run_cells(builders, cells)

    @requires_numpy
    def test_rows_identical_with_numpy_masked(self, monkeypatch):
        """End to end across the whole pipeline: scalar sampling,
        scalar merges and the committer's fallback walk must reproduce
        the array plane's rows bit for bit."""
        table, jobs = self._table()
        unmasked = run_table_batch(table, jobs)
        clear_worker_cache()
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert run_table_batch(table, jobs) == unmasked


class TestCampaignMergeBatchIdentity:
    @pytest.fixture(autouse=True)
    def _fresh_pools(self):
        shutdown_pools()
        yield
        shutdown_pools()

    def _campaign(self, workers, merge_batch=None):
        campaign = Campaign(
            seeds=(0, 1, 2), workers=workers, merge_batch=merge_batch
        )
        campaign.add_scenario("spin", "clean_spin", tasks=2, total_steps=40)
        campaign.add_scenario("phil", "philosophers", op="cyclic")
        return campaign

    def test_rows_identical_at_every_merge_setting(self):
        baseline = self._campaign(workers=1, merge_batch=False)
        rows = baseline.run()
        configs = [(2, None), (2, False)]
        if numpy_available():
            configs.append((2, True))
        for workers, merge_batch in configs:
            campaign = self._campaign(workers, merge_batch)
            assert campaign.run() == rows, (
                f"rows diverged at workers={workers}, "
                f"merge_batch={merge_batch}"
            )
            for variant in baseline.results:
                expected = baseline.results[variant]
                actual = campaign.results[variant]
                assert [r.found_bug for r in actual] == [
                    r.found_bug for r in expected
                ]
                assert [
                    [a.kind for a in r.anomalies] for r in actual
                ] == [[a.kind for a in r.anomalies] for r in expected]
