"""Tests for the bridge protocol codec and endpoints."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bridge.bridge import SlaveBridgeAdapter, build_bridge
from repro.bridge.protocol import (
    CommandFrame,
    MAX_PRIORITY,
    MAX_TID,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
)
from repro.errors import BridgeError
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.services import (
    ServiceCode,
    ServiceRequest,
    ServiceResult,
    ServiceStatus,
)
from repro.sim.mailbox import MailboxBank


class TestProtocolCodec:
    def test_roundtrip_simple(self):
        request = ServiceRequest(
            service=ServiceCode.TC, priority=5, program="qsort", issuer=2
        )
        word, frame = encode_request(request, sequence=17)
        decoded = decode_request(word, frame)
        assert decoded.service is ServiceCode.TC
        assert decoded.priority == 5
        assert decoded.program == "qsort"
        assert decoded.issuer == 2
        assert decoded.sequence == 17

    def test_roundtrip_no_optionals(self):
        request = ServiceRequest(service=ServiceCode.TY)
        word, frame = encode_request(request, sequence=1)
        decoded = decode_request(word, frame)
        assert decoded.target is None
        assert decoded.priority is None

    def test_target_zero_is_representable(self):
        request = ServiceRequest(service=ServiceCode.TD, target=0)
        word, frame = encode_request(request, sequence=1)
        assert decode_request(word, frame).target == 0

    def test_limits_enforced(self):
        with pytest.raises(BridgeError):
            encode_request(
                ServiceRequest(service=ServiceCode.TD, target=MAX_TID + 1), 1
            )
        with pytest.raises(BridgeError):
            encode_request(
                ServiceRequest(
                    service=ServiceCode.TC, priority=MAX_PRIORITY + 1
                ),
                1,
            )

    def test_sequence_mismatch_detected(self):
        request = ServiceRequest(service=ServiceCode.TD, target=1)
        word, _frame = encode_request(request, sequence=3)
        with pytest.raises(BridgeError):
            decode_request(word, CommandFrame(sequence=4, program=None, issuer=None))

    def test_result_roundtrip(self):
        request = ServiceRequest(service=ServiceCode.TC, priority=1, sequence=9)
        result = ServiceResult(
            request=request, status=ServiceStatus.OK, value=12
        )
        word = encode_result(result, sequence=9)
        status, sequence, value = decode_result(word)
        assert status is ServiceStatus.OK
        assert sequence == 9
        assert value == 12

    def test_result_without_value(self):
        request = ServiceRequest(service=ServiceCode.TY, sequence=2)
        result = ServiceResult(
            request=request, status=ServiceStatus.NO_RUNNING_TASK
        )
        _status, _seq, value = decode_result(encode_result(result, 2))
        assert value is None

    @given(
        service=st.sampled_from(list(ServiceCode)),
        target=st.one_of(st.none(), st.integers(min_value=0, max_value=MAX_TID)),
        priority=st.one_of(
            st.none(), st.integers(min_value=0, max_value=MAX_PRIORITY)
        ),
        sequence=st.integers(min_value=0, max_value=1000),
        program=st.one_of(st.none(), st.text(max_size=12)),
    )
    @settings(max_examples=200, deadline=None)
    def test_request_roundtrip_property(
        self, service, target, priority, sequence, program
    ):
        request = ServiceRequest(
            service=service, target=target, priority=priority, program=program
        )
        word, frame = encode_request(request, sequence)
        decoded = decode_request(word, frame)
        assert decoded.service is service
        assert decoded.target == target
        assert decoded.priority == priority
        assert (decoded.program or None) == (program or None)


def make_pair():
    bank = MailboxBank.omap5912()
    kernel = PCoreKernel(config=KernelConfig())
    master, slave = build_bridge(bank, kernel)
    return bank, kernel, master, slave


class TestBridgeEndpoints:
    def test_command_flows_to_kernel_and_reply_returns(self):
        _bank, kernel, master, slave = make_pair()
        seq = master.issue(ServiceRequest(service=ServiceCode.TC, priority=3))
        assert seq is not None
        for tick in range(4):
            slave.step(tick)
        replies = master.pump()
        assert len(replies) == 1
        assert replies[0].ok
        assert replies[0].request.sequence == seq
        assert len(kernel.tasks) == 1

    def test_mailbox_backpressure_rejects_issue(self):
        bank, _kernel, master, _slave = make_pair()
        capacity = bank["arm2dsp_cmd"].capacity
        for _ in range(capacity):
            assert master.issue(ServiceRequest(service=ServiceCode.TY)) is not None
        assert master.issue(ServiceRequest(service=ServiceCode.TY)) is None

    def test_outstanding_age_tracks_oldest(self):
        _bank, _kernel, master, _slave = make_pair()
        assert master.oldest_outstanding_age() is None
        master.now = 10
        master.issue(ServiceRequest(service=ServiceCode.TY))
        master.now = 50
        assert master.oldest_outstanding_age() == 40

    def test_crashed_kernel_stops_answering(self):
        _bank, kernel, master, slave = make_pair()
        kernel.panic("dead")
        master.issue(ServiceRequest(service=ServiceCode.TC, priority=1))
        for tick in range(10):
            slave.step(tick)
        assert master.pump() == []
        assert master.outstanding  # the command is never answered

    def test_reply_backlog_flushes_when_mailbox_frees(self):
        bank, kernel, master, slave = make_pair()
        reply_box = bank["dsp2arm_reply"]
        # Fill the reply mailbox with junk so kernel replies must queue.
        from repro.sim.mailbox import MailboxMessage

        while reply_box.post(MailboxMessage(word=0, payload=None)):
            pass
        # Note: poll() will raise on the junk payloads, so drain manually
        # after the kernel has queued its reply in the adapter backlog.
        seq = master.issue(ServiceRequest(service=ServiceCode.TC, priority=1))
        for tick in range(4):
            slave.step(tick)
        assert len(slave._reply_backlog) == 1
        list(reply_box.drain())
        slave.step(5)
        replies = master.pump()
        assert [r.request.sequence for r in replies] == [seq]

    def test_adapter_halts_with_kernel(self):
        _bank, kernel, _master, slave = make_pair()
        assert not slave.is_halted()
        kernel.panic("x")
        assert slave.is_halted()
