"""Tests for the master-side thread system and time-sharing scheduler."""

from __future__ import annotations

import pytest

from repro.bridge.bridge import build_bridge
from repro.errors import SimulationError
from repro.master.scheduler import TimeSharingScheduler
from repro.master.system import MasterSystem
from repro.master.thread import (
    Delay,
    Done,
    IssueService,
    MasterThread,
    ThreadState,
    WaitReply,
    WriteShared,
    ReadShared,
)
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.services import ServiceCode, ServiceRequest
from repro.sim.mailbox import MailboxBank
from repro.sim.memory import SharedMemory


def build_world():
    bank = MailboxBank.omap5912()
    kernel = PCoreKernel(config=KernelConfig(), shared_memory=SharedMemory(4096))
    bridge_master, slave = build_bridge(bank, kernel)
    master = MasterSystem(bridge=bridge_master, shared_memory=kernel.shared_memory)
    return master, slave, kernel


def run_world(master, slave, ticks):
    for tick in range(ticks):
        master.step(tick)
        slave.step(tick)


class TestMasterThreads:
    def test_issue_and_wait_reply(self):
        master, slave, kernel = build_world()
        observed = {}

        def program(thread):
            yield IssueService(ServiceRequest(service=ServiceCode.TC, priority=4))
            result = yield WaitReply()
            observed["result"] = result

        master.add_thread(MasterThread(mtid=1, name="t1", program_factory=program))
        run_world(master, slave, 12)
        assert observed["result"].ok
        assert len(kernel.tasks) == 1
        assert master.is_halted()  # all threads done

    def test_wait_without_issue_is_error(self):
        master, slave, _ = build_world()

        def program(thread):
            yield WaitReply()

        master.add_thread(MasterThread(mtid=1, name="t1", program_factory=program))
        with pytest.raises(SimulationError):
            run_world(master, slave, 3)

    def test_delay_consumes_steps(self):
        master, slave, _ = build_world()
        trace = []

        def program(thread):
            trace.append(("start", master.now))
            yield Delay(5)
            trace.append(("end", master.now))
            yield Done()

        master.add_thread(MasterThread(mtid=1, name="t1", program_factory=program))
        run_world(master, slave, 10)
        start = trace[0][1]
        end = trace[1][1]
        assert end - start >= 5

    def test_shared_memory_ops(self):
        master, slave, kernel = build_world()
        seen = {}

        def program(thread):
            yield WriteShared(0x40, 777)
            value = yield ReadShared(0x40)
            seen["value"] = value

        master.add_thread(MasterThread(mtid=1, name="t1", program_factory=program))
        run_world(master, slave, 6)
        assert seen["value"] == 777
        assert kernel.shared_memory.read_u16(0x40) == 777

    def test_round_robin_interleaves_threads(self):
        master, slave, _ = build_world()
        order = []

        def make(name):
            def program(thread):
                for _ in range(4):
                    order.append(name)
                    yield Delay(1)

            return program

        master.scheduler = TimeSharingScheduler(quantum=1)
        master.add_thread(MasterThread(mtid=1, name="a", program_factory=make("a")))
        master.add_thread(MasterThread(mtid=2, name="b", program_factory=make("b")))
        run_world(master, slave, 30)
        # With quantum 1 the two threads alternate.
        assert order[:4] == ["a", "b", "a", "b"]

    def test_quantum_groups_steps(self):
        master, slave, _ = build_world()
        order = []

        def make(name):
            def program(thread):
                for _ in range(4):
                    order.append(name)
                    yield Delay(1)

            return program

        master.scheduler = TimeSharingScheduler(quantum=4)
        master.add_thread(MasterThread(mtid=1, name="a", program_factory=make("a")))
        master.add_thread(MasterThread(mtid=2, name="b", program_factory=make("b")))
        run_world(master, slave, 40)
        assert order[:2] == ["a", "a"]

    def test_stalled_thread_retries_when_mailbox_full(self):
        master, slave, kernel = build_world()
        # Saturate the command mailbox first.
        filler_count = 0
        while master.bridge.issue(ServiceRequest(service=ServiceCode.TY)) is not None:
            filler_count += 1

        def program(thread):
            yield IssueService(ServiceRequest(service=ServiceCode.TC, priority=1))
            yield WaitReply()

        thread = MasterThread(mtid=1, name="t1", program_factory=program)
        master.add_thread(thread)
        master.step(0)  # issue fails -> stalled
        assert thread.state is ThreadState.STALLED
        run_world(master, slave, 20)
        assert len(kernel.tasks) == 1  # eventually issued and created

    def test_all_done_detection(self):
        scheduler = TimeSharingScheduler()
        thread = MasterThread(mtid=1, name="x", program_factory=lambda t: iter(()))
        thread.state = ThreadState.DONE
        scheduler.add(thread)
        assert scheduler.all_done()

    def test_quantum_validation(self):
        with pytest.raises(SimulationError):
            TimeSharingScheduler(quantum=0)
