"""Tests for the persistent worker-pool subsystem.

Covers the :class:`~repro.ptest.pool.WorkerPool` lifecycle (warm reuse
across ``Campaign.run`` calls, dead-worker respawn, deterministic
shutdown), the deduped ScenarioRef-table batch wire format, and the
worker-side scenario/PFA cache — per-variant keying, fork-safety (no
cross-variant leakage between refs differing only in params), and
result identity against the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import pytest

from repro.ptest.campaign import Campaign
from repro.ptest.executor import CellExecutor, WorkCell
from repro.ptest.pool import (
    WorkerPool,
    active_pools,
    clear_worker_cache,
    close_pool,
    get_pool,
    make_batch_table,
    run_table_batch,
    shutdown_pools,
    worker_cache_info,
)
from repro.workloads.registry import scenario_ref


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    """Every test starts and ends without lingering shared pools."""
    shutdown_pools()
    yield
    shutdown_pools()


def _spin_campaign(workers=1, pool=None, seeds=(0, 1, 2)) -> Campaign:
    campaign = Campaign(seeds=seeds, workers=workers, pool=pool)
    campaign.add_scenario("spin", "clean_spin", tasks=2, total_steps=40)
    return campaign


# -- module-level helpers: must pickle to (forked) worker processes ------------


@dataclass(frozen=True)
class _Marker:
    """Stand-in run result (executors pass results through opaquely)."""

    seed: int


class _FlakyOnce:
    """Kills its worker the first time any instance runs, then behaves.

    The first ``run`` finds no marker file, drops one, and hard-exits
    the worker process (taking the whole process pool with it); every
    rerun after the executor's respawn finds the marker and succeeds.
    """

    def __init__(self, marker_path: str, seed: int):
        self.marker_path = marker_path
        self.seed = seed

    def run(self) -> _Marker:
        marker = Path(self.marker_path)
        if not marker.exists():
            marker.write_text("worker died here")
            os._exit(1)
        return _Marker(self.seed)


def _flaky_builder(marker_path: str, seed: int) -> _FlakyOnce:
    return _FlakyOnce(marker_path, seed)


class _AlwaysDies:
    def __init__(self, seed: int):
        self.seed = seed

    def run(self) -> None:
        os._exit(1)


def _lethal_builder(seed: int) -> _AlwaysDies:
    return _AlwaysDies(seed)


def _exit_worker() -> None:
    os._exit(1)


class _RaisesInRun:
    def __init__(self, seed: int):
        self.seed = seed

    def run(self) -> None:
        raise ValueError(f"cell {self.seed} is unrunnable")


def _raising_builder(seed: int) -> _RaisesInRun:
    return _RaisesInRun(seed)


def _shadow_spin_builder(seed: int, tasks: int = 2, total_steps: int = 40):
    """A custom-registry impostor for the built-in ``clean_spin``."""
    raise AssertionError("must never run in this test")


class TestWorkerPoolLifecycle:
    def test_explicit_pool_reused_across_campaign_runs(self):
        with WorkerPool(2) as pool:
            campaign = _spin_campaign(workers=2, pool=pool)
            first = campaign.run()
            first_id = campaign.last_pool_id
            second = campaign.run()
            assert first == second
            assert first_id is not None
            assert campaign.last_pool_id == first_id  # same warm pool
            assert pool.spawns == 1

    def test_shared_pool_reused_across_separate_campaigns(self):
        a = _spin_campaign(workers=2)
        b = _spin_campaign(workers=2)
        rows_a = a.run()
        rows_b = b.run()
        assert rows_a == rows_b
        assert a.last_pool_id == b.last_pool_id is not None
        assert get_pool(2).spawns == 1

    def test_serial_run_reports_no_pool(self):
        campaign = _spin_campaign(workers=1)
        campaign.run()
        assert campaign.last_pool_id is None
        assert active_pools() == []

    def test_dead_worker_respawn_at_pool_level(self):
        with WorkerPool(2) as pool:
            assert pool.ping()
            first_id = pool.pool_id
            with pytest.raises(BrokenProcessPool):
                pool.submit(_exit_worker).result()
            pool.notify_broken()
            # The next use respawns transparently.
            assert pool.ping()
            assert pool.pool_id != first_id
            assert pool.spawns == 2

    def test_executor_resubmits_batches_after_worker_death(self, tmp_path):
        marker = str(tmp_path / "died-once")
        builder = partial(_flaky_builder, marker)
        cells = [WorkCell(variant="flaky", seed=seed) for seed in range(4)]
        with WorkerPool(2) as pool:
            executor = CellExecutor(workers=2, pool=pool, batch_size=2)
            results = executor.run_cells({"flaky": builder}, cells)
            assert results == [_Marker(seed) for seed in range(4)]
            assert pool.spawns == 2  # the respawn happened mid-run

    def test_deterministically_lethal_batch_surfaces(self):
        cells = [WorkCell(variant="boom", seed=seed) for seed in range(2)]
        with WorkerPool(2) as pool:
            executor = CellExecutor(workers=2, pool=pool)
            with pytest.raises(BrokenProcessPool):
                executor.run_cells({"boom": _lethal_builder}, cells)

    def test_cell_exception_aborts_but_leaves_pool_usable(self):
        # A raising cell propagates out of run_cells; queued batches
        # are cancelled rather than left burning the persistent pool,
        # and the same pool serves the next run.
        cells = [WorkCell(variant="bad", seed=seed) for seed in range(8)]
        with WorkerPool(2) as pool:
            executor = CellExecutor(workers=2, pool=pool, batch_size=1)
            with pytest.raises(ValueError, match="unrunnable"):
                executor.run_cells({"bad": _raising_builder}, cells)
            assert pool.ping()  # no respawn, no wedged queue
            assert pool.spawns == 1
            good = _spin_campaign(workers=2, pool=pool)
            assert good.run()[0].runs == 3

    def test_stale_break_notification_is_a_no_op(self):
        with WorkerPool(2) as pool:
            assert pool.ping()
            first_id = pool.pool_id
            with pytest.raises(BrokenProcessPool):
                pool.submit(_exit_worker).result()
            pool.notify_broken(first_id)
            assert pool.ping()
            respawned_id = pool.pool_id
            assert respawned_id != first_id
            # A second observer reporting the *old* executor's death
            # must not tear down the fresh one.
            pool.notify_broken(first_id)
            assert pool.pool_id == respawned_id
            assert pool.spawns == 2

    def test_context_manager_gives_deterministic_shutdown(self):
        with WorkerPool(2) as pool:
            assert pool.ping()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_exit_worker)

    def test_shutdown_pools_is_idempotent_and_replaces(self):
        pool = get_pool(2)
        assert pool.ping()
        shutdown_pools()
        shutdown_pools()  # second call is a no-op
        assert pool.closed
        replacement = get_pool(2)
        assert replacement is not pool and not replacement.closed

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(0)


class TestShutdownRobustness:
    """Regressions for the multi-owner close story: explicit close,
    context manager, close_pool/shutdown_pools and the atexit sweep can
    all fire for the same pool, in any order — every combination must
    be a strict no-op after the first."""

    def test_double_close_is_idempotent(self):
        pool = WorkerPool(2)
        assert pool.ping()
        pool.close()
        pool.close()  # second close must not re-enter executor shutdown
        assert pool.closed

    def test_double_close_of_cold_pool(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        assert pool.closed and pool.spawns == 0

    def test_shutdown_pools_after_explicit_close(self):
        # The atexit-shaped sweep runs after an owner already closed
        # the shared pool explicitly; it must tolerate that, twice.
        pool = get_pool(2)
        assert pool.ping()
        pool.close()
        shutdown_pools()
        shutdown_pools()
        assert pool.closed

    def test_close_pool_then_shutdown_pools(self):
        pool = get_pool(2)
        assert pool.ping()
        close_pool(2)
        assert pool.closed
        close_pool(2)  # deregistered: nothing left to close
        shutdown_pools()

    def test_terminate_kills_workers_and_respawns(self):
        with WorkerPool(2) as pool:
            assert pool.ping()
            first = pool.pool_id
            assert pool.terminate() >= 1
            assert pool.ping()  # next use respawns transparently
            assert pool.pool_id != first
            assert pool.spawns == 2

    def test_stale_terminate_is_a_no_op(self):
        with WorkerPool(2) as pool:
            assert pool.ping()
            first = pool.pool_id
            pool.terminate(first)
            assert pool.ping()
            fresh = pool.pool_id
            # A second watchdog reporting the *old* executor hung must
            # not kill the fresh one (mirrors notify_broken scoping).
            assert pool.terminate(first) == 0
            assert pool.pool_id == fresh

    def test_terminate_on_cold_pool_is_zero(self):
        with WorkerPool(2) as pool:
            assert pool.terminate() == 0


class TestPrewarmRespawnRace:
    def test_prewarm_after_worker_death_respawns_then_runs(self):
        # A worker died and nobody called notify_broken yet: prewarm's
        # submissions hit the broken executor and must ride the
        # submit-time respawn instead of wedging or surfacing the break.
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        with WorkerPool(2) as pool:
            assert pool.ping()
            with pytest.raises(BrokenProcessPool):
                pool.submit(_exit_worker).result()
            assert pool.prewarm([ref], wait=True) == 1
            campaign = _spin_campaign(workers=2, pool=pool)
            assert campaign.run()[0].runs == 3

    def test_prewarm_concurrent_with_worker_death(self):
        # Fire-and-forget prewarm racing an in-flight worker kill:
        # whichever order the pool observes them in, the death must
        # stay contained (prewarm is advisory) and the next campaign
        # must run to completion on a respawned pool.
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        with WorkerPool(2) as pool:
            assert pool.ping()
            doomed = pool.submit(_exit_worker)
            pool.prewarm([ref])
            with pytest.raises(BrokenProcessPool):
                doomed.result()
            pool.notify_broken()
            campaign = _spin_campaign(workers=2, pool=pool)
            assert campaign.run()[0].runs == 3


class TestLateRegistration:
    def test_scenarios_registered_after_spawn_still_resolve(self):
        # Warm workers snapshot the registry at fork; a registration
        # made afterwards bumps the registry version, which retires the
        # stale workers transparently on the next dispatch.
        from repro.workloads.registry import REGISTRY

        name = "late_registered_for_pool_test"
        with WorkerPool(2) as pool:
            warmup = _spin_campaign(workers=2, pool=pool)
            warmup.run()
            assert pool.spawns == 1

            @REGISTRY.register(name)
            def _late(seed: int, total_steps: int = 40):
                # Forked workers inherit this closure through the
                # registry — only the ref crosses the wire.
                from repro.workloads.registry import build_scenario

                return build_scenario(
                    "clean_spin", seed, tasks=2, total_steps=total_steps
                )

            try:
                late = Campaign(seeds=(0, 1), workers=2, pool=pool)
                late.add_scenario("late", name)
                rows = late.run()
                assert rows[0].runs == 2
                assert pool.spawns == 2  # stale workers were retired
            finally:
                del REGISTRY._specs[name]


class TestExplicitPoolRequestsParallelism:
    def test_multiworker_pool_drives_default_workers(self):
        # Handing over a multi-worker pool IS the parallelism request;
        # the executor must not silently run serial at workers=None.
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        cells = [WorkCell(variant="spin", seed=seed) for seed in range(4)]
        with WorkerPool(2) as pool:
            executor = CellExecutor(pool=pool)  # workers left unset
            parallel = executor.run_cells({"spin": ref}, cells)
            assert executor.ran_parallel is True
            assert executor.last_pool_id == pool.pool_id
        serial = CellExecutor().run_cells({"spin": ref}, cells)
        assert [r.ticks for r in parallel] == [r.ticks for r in serial]

    def test_explicit_workers_one_forces_in_process_execution(self):
        # workers=1 must stay an honoured in-process escape hatch
        # (debuggers, monkeypatched builders) even with a pool wired.
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        cells = [WorkCell(variant="spin", seed=seed) for seed in range(2)]
        with WorkerPool(2) as pool:
            executor = CellExecutor(workers=1, pool=pool)
            executor.run_cells({"spin": ref}, cells)
            assert executor.ran_parallel is False
            assert executor.last_pool_id is None
            assert pool.spawns == 0  # the pool was never touched
            campaign = _spin_campaign(workers=None, pool=pool)
            serial_rows = campaign.run(workers=1)
            assert campaign.last_pool_id is None
            assert campaign.run() == serial_rows  # pool path agrees
            assert campaign.last_pool_id == pool.pool_id


class TestMidRunRegistration:
    def test_registration_during_drain_does_not_abort_the_run(self):
        # A registry version bump mid-run retires the executor under
        # the dispatch loop; queued futures come back cancelled and
        # must be resubmitted, not surfaced as a crash.
        from repro.workloads.registry import REGISTRY

        name = "registered_mid_run_for_pool_test"
        registered = []

        class _RegisteringSink:
            def accept(self, cell, result):
                if not registered:
                    registered.append(name)
                    REGISTRY.register(name, _shadow_spin_builder)

        try:
            with WorkerPool(2) as pool:
                campaign = Campaign(
                    seeds=tuple(range(6)), workers=2,
                    batch_size=1, pool=pool,
                )
                campaign.add_scenario(
                    "spin", "clean_spin", tasks=2, total_steps=40
                )
                rows = campaign.run(sink=_RegisteringSink())
            assert rows[0].runs == 6
            serial = Campaign(seeds=tuple(range(6)))
            serial.add_scenario(
                "spin", "clean_spin", tasks=2, total_steps=40
            )
            assert serial.run() == rows
        finally:
            REGISTRY._specs.pop(name, None)


class TestBatchTable:
    def test_worker_cache_entries_are_capped(self, monkeypatch):
        import repro.ptest.pool as pool_mod

        clear_worker_cache()
        monkeypatch.setattr(pool_mod, "MAX_WORKER_CACHE_ENTRIES", 2)
        try:
            refs = [
                scenario_ref("clean_spin", tasks=2, total_steps=steps)
                for steps in (40, 50, 60)
            ]
            for ref in refs:
                run_table_batch((ref,), ((0, 0),))
            info = worker_cache_info()
            assert info["entries"] == 2
            # Oldest-inserted entry was the one evicted.
            assert refs[0].cache_key not in set(info["keys"])
        finally:
            clear_worker_cache()

    def test_legacy_run_cell_batch_matches_table_path_without_caching(self):
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        try:
            from repro.ptest.executor import run_cell_batch

            clear_worker_cache()
            legacy = run_cell_batch([(ref, 0), (ref, 1)])
            # The legacy form is side-effect-free in the calling
            # process — only the table path populates the cache.
            assert worker_cache_info()["entries"] == 0
            table = run_table_batch((ref,), ((0, 0), (0, 1)))
            assert [r.ticks for r in legacy] == [r.ticks for r in table]
        finally:
            clear_worker_cache()  # table path ran in-process

    def test_equal_refs_collapse_to_one_table_entry(self):
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        twin = scenario_ref("clean_spin", total_steps=40, tasks=2)
        table, jobs = make_batch_table([ref, twin, ref], [0, 1, 2])
        assert table == (ref,)
        assert jobs == ((0, 0), (0, 1), (0, 2))

    def test_distinct_refs_keep_distinct_entries(self):
        fast = scenario_ref("clean_spin", total_steps=40)
        slow = scenario_ref("clean_spin", total_steps=80)
        table, jobs = make_batch_table([fast, slow, fast], [0, 0, 1])
        assert table == (fast, slow)
        assert jobs == ((0, 0), (1, 0), (0, 1))

    def test_bound_refs_never_collapse_into_equal_unbound_refs(self):
        # A ref bound to a custom registry compares equal to a default
        # ref with the same (name, params) — by the cache-key contract —
        # but resolves through a different registry, so the table must
        # keep both entries rather than silently running one builder
        # for the other's cells.
        from repro.workloads.registry import ScenarioRegistry

        registry = ScenarioRegistry()
        registry.register("clean_spin", _shadow_spin_builder)
        bound = registry.ref("clean_spin", tasks=2, total_steps=40)
        unbound = scenario_ref("clean_spin", tasks=2, total_steps=40)
        assert bound == unbound  # the identity contract holds...
        table, jobs = make_batch_table([unbound, bound], [0, 0])
        assert len(table) == 2  # ...but dispatch keeps them apart
        assert jobs == ((0, 0), (1, 0))

    def test_misaligned_builders_and_seeds_rejected(self):
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        with pytest.raises(ValueError, match="cell-for-cell"):
            make_batch_table([ref, ref], [0])

    def test_unpicklable_ref_payload_rejected_explicitly(self):
        # A ref can satisfy construction-time validation (hashable
        # params) yet carry an unpicklable payload — here a binding to
        # a registry whose builder is a local closure.  Before the
        # explicit probe this surfaced as a raw PicklingError from deep
        # inside the pool submission machinery; the table must reject
        # it by name instead.
        from repro.errors import ConfigError
        from repro.workloads.registry import ScenarioRegistry

        registry = ScenarioRegistry()
        registry.register(
            "unpicklable_payload", lambda seed, tasks=2: None
        )
        ref = registry.ref("unpicklable_payload", tasks=2)
        with pytest.raises(ConfigError, match="cannot be pickled"):
            make_batch_table([ref], [0])

    def test_unhashable_builders_ship_undeduped(self):
        class Unhashable:
            __hash__ = None

            def __call__(self, seed):  # pragma: no cover - never run
                raise AssertionError

        builder = Unhashable()
        table, jobs = make_batch_table([builder, builder], [0, 1])
        assert len(table) == 2  # identity entries, one per cell
        assert jobs == ((0, 0), (1, 1))

    def test_run_table_batch_matches_direct_build(self):
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        try:
            results = run_table_batch((ref,), ((0, 0), (0, 1)))
            direct = [ref(0).run(), ref(1).run()]
            assert [r.ticks for r in results] == [r.ticks for r in direct]
            info = worker_cache_info()
            assert ref.cache_key in set(info["keys"])
            # Both jobs shared one resolution and one compilation.
            assert info["hits"][ref.cache_key] == 1
            assert info["compilations"][ref.cache_key] == 1
        finally:
            clear_worker_cache()  # ran in-process: leave no residue


class TestWorkerSideCache:
    def test_cache_keys_are_per_variant(self):
        # A single-process pool makes the worker cache observable
        # deterministically (every batch lands in the same worker).
        fast = scenario_ref("clean_spin", tasks=2, total_steps=40)
        slow = scenario_ref("clean_spin", tasks=2, total_steps=80)
        cells = [
            WorkCell(variant=name, seed=seed)
            for name in ("fast", "slow")
            for seed in range(3)
        ]
        with WorkerPool(1) as pool:
            executor = CellExecutor(workers=2, pool=pool)
            parallel = executor.run_cells({"fast": fast, "slow": slow}, cells)
            info = pool.submit(worker_cache_info).result()
        assert set(info["keys"]) == {fast.cache_key, slow.cache_key}
        # One PFA compilation per variant, however many seeds ran.
        assert info["compilations"][fast.cache_key] == 1
        assert info["compilations"][slow.cache_key] == 1
        serial = CellExecutor(workers=1).run_cells(
            {"fast": fast, "slow": slow}, cells
        )
        assert [r.ticks for r in parallel] == [r.ticks for r in serial]

    def test_no_cross_variant_leakage_between_param_twins(self):
        # Same scenario name, params differing only in one flag, packed
        # into the same batches: the buggy variant must still detect and
        # the control must still stay clean (cache keyed on params).
        campaign = Campaign(
            seeds=(0, 1), workers=2, batch_size=4, pool=None
        )
        campaign.add_grid("phil", "philosophers", {"ordered": [False, True]})
        rows = {row.variant: row for row in campaign.run()}
        assert rows["phil[ordered=False]"].rate == 1.0
        assert rows["phil[ordered=True]"].rate == 0.0

    def test_rows_identical_across_warm_cold_and_serial(self):
        campaign = Campaign(seeds=(0, 1))
        campaign.add_scenario("cyclic", "philosophers", op="cyclic")
        campaign.add_scenario("ordered", "philosophers", ordered=True)
        serial_rows = campaign.run(workers=1)
        with WorkerPool(2) as pool:
            warm = Campaign(seeds=(0, 1), workers=2, pool=pool)
            warm.add_scenario("cyclic", "philosophers", op="cyclic")
            warm.add_scenario("ordered", "philosophers", ordered=True)
            cold_rows = warm.run()  # first dispatch: cold pool
            warm_rows = warm.run()  # second dispatch: warm + cached
        assert cold_rows == serial_rows
        assert warm_rows == serial_rows
