"""Stateful property testing of the pCore kernel (hypothesis).

A random interleaving of Table I services and kernel steps — exactly
what pTest throws at the real kernel — must never violate the kernel's
own invariants, whatever the order:

* live tasks have unique tids and unique priorities,
* the ready queue holds exactly the READY tasks, sorted by priority,
* at most one task is RUNNING, and it is the scheduler's current,
* memory accounting: allocated + free == capacity, never negative,
* with the correct GC, memory is fully reclaimed once all tasks die,
* the kernel only panics when the buggy GC is enabled,
* mutex owners are live tasks; waiters are BLOCKED on that resource.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.services import ServiceCode, ServiceRequest
from repro.pcore.tcb import TaskState
from repro.sim.memory import SharedMemory

PRIORITIES = st.integers(min_value=0, max_value=40)
TIDS = st.integers(min_value=0, max_value=20)


class KernelMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.kernel = PCoreKernel(
            config=KernelConfig(max_tasks=8, gc_interval=4),
            shared_memory=SharedMemory(size=8 * 1024),
        )
        self.tick = 0

    # -- actions -----------------------------------------------------------

    @rule(priority=PRIORITIES)
    def create(self, priority: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TC, priority=priority)
        )

    @rule(target_tid=TIDS)
    def delete(self, target_tid: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TD, target=target_tid)
        )

    @rule(target_tid=TIDS)
    def suspend(self, target_tid: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TS, target=target_tid)
        )

    @rule(target_tid=TIDS)
    def resume(self, target_tid: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TR, target=target_tid)
        )

    @rule(target_tid=TIDS, priority=PRIORITIES)
    def change_priority(self, target_tid: int, priority: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(
                service=ServiceCode.TCH, target=target_tid, priority=priority
            )
        )

    @rule()
    def yield_service(self) -> None:
        self.kernel.execute_service(ServiceRequest(service=ServiceCode.TY))

    @rule(steps=st.integers(min_value=1, max_value=20))
    def run_kernel(self, steps: int) -> None:
        for _ in range(steps):
            self.kernel.step(self.tick)
            self.tick += 1

    # -- invariants -----------------------------------------------------------

    @invariant()
    def no_panic_with_correct_gc(self) -> None:
        assert not self.kernel.is_halted(), self.kernel.panic_reason

    @invariant()
    def unique_priorities_among_live(self) -> None:
        live = self.kernel.live_tasks()
        priorities = [task.priority for task in live]
        assert len(priorities) == len(set(priorities))

    @invariant()
    def ready_queue_consistent(self) -> None:
        ready = self.kernel.scheduler.ready_tasks()
        # Sorted by descending priority.
        assert all(
            ready[i].priority >= ready[i + 1].priority
            for i in range(len(ready) - 1)
        )
        # Exactly the READY tasks, except a just-dispatched current.
        ready_set = {task.tid for task in ready}
        for task in self.kernel.tasks.values():
            if task.state is TaskState.READY:
                current = self.kernel.scheduler.current
                if current is not None and current.tid == task.tid:
                    continue
                assert task.tid in ready_set, task.describe()
            else:
                assert task.tid not in ready_set, task.describe()

    @invariant()
    def at_most_one_running(self) -> None:
        running = [
            task
            for task in self.kernel.tasks.values()
            if task.state is TaskState.RUNNING
        ]
        assert len(running) <= 1
        if running:
            current = self.kernel.scheduler.current
            assert current is not None and current.tid == running[0].tid

    @invariant()
    def memory_accounting_consistent(self) -> None:
        memory = self.kernel.memory
        assert 0 <= memory.allocated_bytes <= memory.capacity
        assert memory.free_bytes == memory.capacity - memory.allocated_bytes

    @invariant()
    def task_limit_respected(self) -> None:
        assert len(self.kernel.live_tasks()) <= self.kernel.config.max_tasks

    @invariant()
    def mutex_owners_and_waiters_consistent(self) -> None:
        for resource in self.kernel.resources.values():
            owner = getattr(resource, "owner", None)
            if owner is not None:
                assert owner in self.kernel.tasks
            for waiter in resource.waiters:
                task = self.kernel.tasks.get(waiter)
                assert task is not None
                assert task.state is TaskState.BLOCKED

    def teardown(self) -> None:
        # Kill everything; with the correct GC all memory must return.
        for tid in list(self.kernel.tasks):
            self.kernel.execute_service(
                ServiceRequest(service=ServiceCode.TD, target=tid)
            )
        self.kernel.gc.collect()
        assert self.kernel.memory.allocated_bytes == 0


KernelMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestKernelStateMachine = KernelMachine.TestCase
