"""Tests for report replay and the barrier workload."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ReproError
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.tcb import TaskState
from repro.ptest.detector import AnomalyKind
from repro.ptest.replay import parse_merged_description, replay_report_dict
from repro.sim.memory import SharedMemory
from repro.workloads.barrier import (
    make_barrier_program,
    setup_barrier,
)
from repro.workloads.scenarios import philosophers_case2

from repro.pcore.testkit import create_task


class TestParseMergedDescription:
    def test_roundtrip_through_describe(self):
        result = philosophers_case2(seed=0).run()
        text = result.report.merged_description
        merged = parse_merged_description(text)
        assert merged.describe().replace("]", "]") == text
        assert len(merged) == result.merged_length

    def test_bad_token_rejected(self):
        with pytest.raises(ConfigError):
            parse_merged_description("TC[p0#1] garbage")

    def test_out_of_order_sequence_rejected(self):
        with pytest.raises(ConfigError):
            parse_merged_description("TC[p0#2]")

    def test_empty_description(self):
        merged = parse_merged_description("")
        assert len(merged) == 0


class TestReplay:
    def test_replayed_report_refinds_the_deadlock(self):
        scenario = philosophers_case2(seed=3)
        original = scenario.run()
        assert original.found_bug
        serialized = original.report.to_dict()
        # A "new process" replays from the dict alone + the scenario env.
        fresh = philosophers_case2(seed=3)  # supplies config/programs
        replayed = replay_report_dict(
            serialized,
            config=fresh.config,
            programs=dict(fresh.programs),
        )
        assert replayed.found_bug
        assert replayed.report.primary.kind is AnomalyKind.DEADLOCK
        assert (
            replayed.report.primary.detected_at
            == original.report.primary.detected_at
        )

    def test_replay_preserves_seed_from_dict(self):
        scenario = philosophers_case2(seed=7)
        original = scenario.run()
        serialized = original.report.to_dict()
        fresh = philosophers_case2(seed=0)  # wrong seed in the config
        replayed = replay_report_dict(
            serialized, config=fresh.config, programs=dict(fresh.programs)
        )
        assert replayed.found_bug  # dict's seed=7 wins


def fresh_kernel() -> PCoreKernel:
    return PCoreKernel(
        config=KernelConfig(), shared_memory=SharedMemory(size=32 * 1024)
    )


def run_until_empty(kernel: PCoreKernel, max_ticks: int) -> int:
    for tick in range(max_ticks):
        kernel.step(tick)
        if not kernel.tasks:
            return tick
    return max_ticks


class TestBarrier:
    def _spawn_group(self, kernel, parties, phases, faulty):
        setup_barrier(kernel)
        program = make_barrier_program(parties, phases=phases, faulty=faulty)
        kernel.register_program("barrier", program)
        return [
            create_task(kernel, priority=i + 1, program="barrier").value
            for i in range(parties)
        ]

    def test_healthy_barrier_completes_all_phases(self):
        kernel = fresh_kernel()
        self._spawn_group(kernel, parties=4, phases=3, faulty=False)
        final = run_until_empty(kernel, max_ticks=20_000)
        assert final < 20_000
        assert not kernel.is_halted()
        assert kernel.shared_memory.read_u16(0x0D00) == 0  # reset each phase

    def test_two_parties_minimum(self):
        with pytest.raises(ReproError):
            make_barrier_program(parties=1)

    def test_faulty_barrier_wedges_the_group(self):
        kernel = fresh_kernel()
        tids = self._spawn_group(kernel, parties=4, phases=6, faulty=True)
        run_until_empty(kernel, max_ticks=20_000)
        # The dropped release on phase 3 strands at least one task.
        survivors = [tid for tid in tids if tid in kernel.tasks]
        assert survivors
        assert any(
            kernel.tasks[tid].state is TaskState.BLOCKED for tid in survivors
        )

    def test_faulty_barrier_detected_as_starvation(self):
        from repro.bridge.bridge import build_bridge
        from repro.ptest.detector import BugDetector, DetectorConfig
        from repro.sim.mailbox import MailboxBank

        kernel = fresh_kernel()
        self._spawn_group(kernel, parties=3, phases=6, faulty=True)
        bridge_master, _ = build_bridge(MailboxBank.omap5912(), kernel)
        detector = BugDetector(
            kernel=kernel,
            bridge=bridge_master,
            config=DetectorConfig(progress_window=500),
        )
        for tick in range(5_000):
            kernel.step(tick)
            if tick % 8 == 0:
                detector.sweep(tick)
            if detector.triggered:
                break
        starvation = detector.first(AnomalyKind.STARVATION)
        assert starvation is not None
