"""Tests for composed refinement pipelines and cross-round pre-warming.

Covers :mod:`repro.ptest.pipeline` (stage scheduling, stop conditions,
spec parsing, CLI integration) and the pre-warming path
(:meth:`WorkerPool.prewarm` / :meth:`CellExecutor.prewarm` /
:func:`prewarm_table` / ``AdaptiveCampaign(prewarm=...)``), including
the PR-5 acceptance matrix: a ``GridZoom -> ReplayFocus`` pipeline
yields bit-identical round-by-round variants, rows and detections at
any ``(workers, batch_size, warm/cold, prewarm on/off)`` configuration,
with one pool spawn across the whole composed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.ptest.adaptive import (
    AdaptiveCampaign,
    GridZoom,
    Repeat,
    ReplayFocus,
    RoundObservation,
)
from repro.ptest.campaign import CampaignRow, DetectionSample, grid_variants
from repro.ptest.executor import CellExecutor
from repro.ptest.pipeline import (
    PipelineStage,
    Plateau,
    PolicyPipeline,
    Until,
    parse_pipeline,
)
from repro.ptest.pool import (
    WorkerPool,
    clear_worker_cache,
    prewarm_table,
    shutdown_pools,
    worker_cache_info,
)
from repro.ptest.replay import ReplayRef, replay_ref
from repro.workloads.registry import ScenarioRegistry, scenario_ref


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    """Every test starts and ends without lingering shared pools."""
    shutdown_pools()
    yield
    shutdown_pools()


# -- observation builders -------------------------------------------------------


def make_row(variant: str, runs: int, detections: int) -> CampaignRow:
    return CampaignRow(
        variant=variant,
        runs=runs,
        detections=detections,
        kinds=("deadlock",) if detections else (),
        mean_ticks_to_detection=200.0 if detections else 0.0,
        mean_commands=9.0,
    )


#: A parseable, re-mergeable interleaving of 2 philosopher-style pairs.
SAMPLE_DESCRIPTION = (
    "TC[p0#1] TC[p1#1] TS[p0#2] TS[p1#2] TR[p0#3] TR[p1#3]"
)


def make_observation(
    variants: dict[str, object],
    hits: dict[str, int] | None = None,
    runs: int = 4,
    index: int = 0,
) -> RoundObservation:
    hits = hits or {}
    rows = tuple(
        make_row(name, runs, hits.get(name, 0)) for name in variants
    )
    detections = {
        name: tuple(
            DetectionSample(
                variant=name,
                seed=seed,
                kind="deadlock",
                merged_op="cyclic",
                merged_description=SAMPLE_DESCRIPTION,
            )
            for seed in range(hits.get(name, 0))
        )
        for name in variants
        if hits.get(name, 0)
    }
    return RoundObservation(
        index=index,
        variants=dict(variants),
        rows=rows,
        detections=detections,
        pool_id=None,
    )


def spin_observation(index: int = 0, detections: int = 0) -> RoundObservation:
    variants = {"spin": scenario_ref("clean_spin", total_steps=40)}
    return make_observation(
        variants, {"spin": detections}, index=index
    )


@dataclass
class _EmitTag:
    """Stub policy: emits one tagged variant per round, pure in the
    observation index; returns ``None`` once ``stop_at`` is reached."""

    tag: str
    stop_at: int | None = None

    def refine(self, observation):
        if self.stop_at is not None and observation.index >= self.stop_at:
            return None
        name = f"{self.tag}{observation.index + 1}"
        return {
            name: scenario_ref(
                "clean_spin", total_steps=40 + 2 * observation.index
            )
        }


# -- stop conditions ------------------------------------------------------------


class TestUntil:
    def test_predicate_sees_latest_observation(self):
        until = Until(lambda obs: obs.total_detections >= 3)
        history = (spin_observation(0, 1), spin_observation(1, 3))
        assert not until.met(history[:1])
        assert until.met(history)

    def test_non_callable_predicate_rejected(self):
        with pytest.raises(ConfigError, match="callable"):
            Until(predicate="nope")


class TestPlateau:
    def history(self, *totals: int):
        return tuple(
            spin_observation(index, detections)
            for index, detections in enumerate(totals)
        )

    def test_needs_a_baseline_round_first(self):
        assert not Plateau(rounds=2).met(self.history(5))
        assert not Plateau(rounds=2).met(self.history(5, 5))

    def test_met_when_no_recent_improvement(self):
        plateau = Plateau(rounds=2)
        assert plateau.met(self.history(5, 5, 4))
        assert plateau.met(self.history(2, 5, 5, 5))

    def test_not_met_while_still_improving(self):
        plateau = Plateau(rounds=2)
        assert not plateau.met(self.history(2, 3, 4))
        assert not plateau.met(self.history(5, 4, 6))

    def test_rounds_validated(self):
        with pytest.raises(ConfigError, match=">= 1"):
            Plateau(rounds=0)


# -- stages and pipeline construction -------------------------------------------


class TestPipelineStage:
    def test_policy_must_refine(self):
        with pytest.raises(ConfigError, match="refine"):
            PipelineStage(policy=object())

    def test_rounds_validated(self):
        with pytest.raises(ConfigError, match=">= 1"):
            PipelineStage(policy=Repeat(), rounds=0)

    def test_until_must_be_a_condition(self):
        with pytest.raises(ConfigError, match="met"):
            PipelineStage(policy=Repeat(), until=object())

    def test_label_and_describe(self):
        stage = PipelineStage(policy=GridZoom(), rounds=3)
        assert stage.label == "GridZoom"
        assert stage.describe() == "GridZoom:3"
        named = PipelineStage(policy=GridZoom(), name="zoom")
        assert named.describe() == "zoom"


class TestPolicyPipelineConstruction:
    def test_needs_stages(self):
        with pytest.raises(ConfigError, match="at least one stage"):
            PolicyPipeline(())

    def test_stages_must_be_pipeline_stages(self):
        with pytest.raises(ConfigError, match="PipelineStage"):
            PolicyPipeline((Repeat(),))

    def test_non_final_stage_needs_a_bound(self):
        with pytest.raises(ConfigError, match="before the last"):
            PolicyPipeline(
                (
                    PipelineStage(policy=Repeat()),
                    PipelineStage(policy=Repeat(), rounds=1),
                )
            )

    def test_final_stage_may_be_unbounded(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(policy=Repeat(), rounds=2),
                PipelineStage(policy=Repeat()),
            )
        )
        assert pipeline.total_rounds() is None

    def test_total_rounds_and_describe(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(policy=GridZoom(), rounds=3, name="zoom"),
                PipelineStage(policy=ReplayFocus(), rounds=2, name="replay"),
            )
        )
        assert pipeline.total_rounds() == 5
        assert pipeline.describe() == "zoom:3 -> replay:2"


# -- scheduling semantics (driven by hand) --------------------------------------


class TestPipelineScheduling:
    def tags(self, refined):
        return list(refined) if refined else None

    def test_rounds_bound_hands_over_to_next_stage(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(_EmitTag("a"), rounds=2, name="A"),
                PipelineStage(_EmitTag("b"), rounds=2, name="B"),
            )
        )
        assert self.tags(pipeline.refine(spin_observation(0))) == ["a1"]
        # Stage A's budget (2 consumed rounds) trips here: stage B
        # refines the same observation and owns the next round.
        assert self.tags(pipeline.refine(spin_observation(1))) == ["b2"]
        assert self.tags(pipeline.refine(spin_observation(2))) == ["b3"]
        # B's budget trips, no stage remains: the campaign stops.
        assert pipeline.refine(spin_observation(3)) is None
        assert pipeline.current_stage is None
        assert pipeline.stage_log == [(0, "A"), (1, "A"), (2, "B"), (3, "B")]

    def test_until_condition_hands_over_early(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(
                    _EmitTag("a"),
                    rounds=10,
                    until=Until(lambda obs: obs.total_detections >= 4),
                    name="A",
                ),
                PipelineStage(_EmitTag("b"), rounds=2, name="B"),
            )
        )
        assert self.tags(pipeline.refine(spin_observation(0, 1))) == ["a1"]
        assert self.tags(pipeline.refine(spin_observation(1, 4))) == ["b2"]

    def test_plateau_condition_hands_over(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(
                    _EmitTag("a"), until=Plateau(rounds=1), name="A"
                ),
                PipelineStage(_EmitTag("b"), rounds=2, name="B"),
            )
        )
        assert self.tags(pipeline.refine(spin_observation(0, 2))) == ["a1"]
        assert self.tags(pipeline.refine(spin_observation(1, 3))) == ["a2"]
        # No improvement over the stage's best: plateau, B takes over.
        assert self.tags(pipeline.refine(spin_observation(2, 3))) == ["b3"]

    def test_converged_policy_hands_over_before_its_budget(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(_EmitTag("a", stop_at=1), rounds=5, name="A"),
                PipelineStage(_EmitTag("b"), rounds=2, name="B"),
            )
        )
        assert self.tags(pipeline.refine(spin_observation(0))) == ["a1"]
        # A's policy returns None at index 1 — B refines the same
        # observation rather than the campaign stopping.
        assert self.tags(pipeline.refine(spin_observation(1))) == ["b2"]

    def test_stage_with_nothing_to_do_is_skipped(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(_EmitTag("a"), rounds=1, name="A"),
                PipelineStage(_EmitTag("b", stop_at=0), rounds=2, name="B"),
                PipelineStage(_EmitTag("c"), rounds=2, name="C"),
            )
        )
        # A's budget trips immediately; B has nothing to emit for this
        # observation, so C takes over in the same refine call.
        assert self.tags(pipeline.refine(spin_observation(0))) == ["c1"]

    def test_every_stage_empty_stops_campaign(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(_EmitTag("a"), rounds=1, name="A"),
                PipelineStage(_EmitTag("b", stop_at=0), rounds=2, name="B"),
            )
        )
        assert pipeline.refine(spin_observation(0)) is None

    def test_round_zero_observation_resets_the_schedule(self):
        pipeline = PolicyPipeline(
            (
                PipelineStage(_EmitTag("a"), rounds=2, name="A"),
                PipelineStage(_EmitTag("b"), rounds=2, name="B"),
            )
        )

        def drive():
            emitted = [
                self.tags(pipeline.refine(spin_observation(index)))
                for index in range(4)
            ]
            return emitted

        first = drive()
        second = drive()  # same instance, next campaign run
        assert first == second == [["a1"], ["b2"], ["b3"], None]

    def test_exhausted_pipeline_stays_stopped_mid_sequence(self):
        pipeline = PolicyPipeline(
            (PipelineStage(_EmitTag("a"), rounds=1, name="A"),)
        )
        assert pipeline.refine(spin_observation(0)) is None
        assert pipeline.refine(spin_observation(1)) is None


# -- spec parsing ---------------------------------------------------------------


class TestParsePipeline:
    def test_parses_stages_with_rounds(self):
        pipeline = parse_pipeline("grid_zoom:3,replay:2")
        assert pipeline.describe() == "grid_zoom:3 -> replay:2"
        assert pipeline.total_rounds() == 5
        assert isinstance(pipeline.stages[0].policy, GridZoom)
        assert isinstance(pipeline.stages[1].policy, ReplayFocus)

    def test_final_stage_may_omit_rounds(self):
        pipeline = parse_pipeline("grid_zoom:2,repeat")
        assert pipeline.stages[-1].rounds is None
        assert pipeline.total_rounds() is None

    def test_policy_kwargs_route_by_name(self):
        pipeline = parse_pipeline(
            "replay:1", policy_kwargs={"replay": {"max_sources": 1}}
        )
        assert pipeline.stages[0].policy.max_sources == 1

    def test_unknown_policy_lists_registry(self):
        with pytest.raises(ConfigError, match="grid_zoom.*replay"):
            parse_pipeline("grid_zoom:2,bogus:1")

    def test_malformed_specs_rejected(self):
        with pytest.raises(ConfigError, match="empty pipeline spec"):
            parse_pipeline(" , ")
        with pytest.raises(ConfigError, match="integer"):
            parse_pipeline("grid_zoom:x")
        with pytest.raises(ConfigError, match=">= 1"):
            parse_pipeline("grid_zoom:0")
        with pytest.raises(ConfigError, match="final stage"):
            parse_pipeline("grid_zoom,replay:2")


# -- pre-warming ----------------------------------------------------------------


class TestPrewarmTable:
    def test_populates_worker_cache_in_process(self):
        clear_worker_cache()
        try:
            spin = scenario_ref("clean_spin", tasks=2, total_steps=40)
            replay = replay_ref(
                scenario_ref("philosophers", chunk=1), SAMPLE_DESCRIPTION
            )
            assert prewarm_table((spin, replay)) == 2
            info = worker_cache_info()
            assert info["entries"] == 2
            assert spin.cache_key in info["keys"]
            assert replay.cache_key in info["keys"]
            # The expensive artifacts are built, not just reserved.
            assert info["compilations"][spin.cache_key] == 1
        finally:
            clear_worker_cache()

    def test_unwarmable_entries_skipped(self):
        clear_worker_cache()
        try:
            registry = ScenarioRegistry()
            registry.register("local_spin", lambda seed, tasks=2: None)
            bound = registry.ref("local_spin", tasks=2)
            unknown = object()
            assert prewarm_table((bound, unknown)) == 0
            assert worker_cache_info()["entries"] == 0
        finally:
            clear_worker_cache()

    def test_resolution_failure_is_swallowed(self):
        clear_worker_cache()
        try:
            # Forged ref naming a scenario the registry does not have:
            # prewarm skips it; the real dispatch path reports it.
            ghost = scenario_ref("clean_spin", total_steps=40)
            object.__setattr__(ghost, "name", "no_such_scenario")
            assert prewarm_table((ghost,)) == 0
        finally:
            clear_worker_cache()


class TestWorkerPoolPrewarm:
    def test_ships_distinct_keys_and_warms_workers(self):
        spin = scenario_ref("clean_spin", tasks=2, total_steps=40)
        duplicate = scenario_ref("clean_spin", tasks=2, total_steps=40)
        other = scenario_ref("clean_spin", tasks=2, total_steps=50)
        with WorkerPool(1) as pool:
            assert pool.prewarm([spin, duplicate, other], wait=True) == 2
            assert pool.prewarmed_refs == 2
            info = pool.submit(worker_cache_info).result()
            assert spin.cache_key in info["keys"]
            assert other.cache_key in info["keys"]
            assert pool.spawns == 1

    def test_prewarmed_round_runs_identically(self):
        ref = scenario_ref("philosophers", chunk=1)
        cells_seeds = (0, 1)
        with WorkerPool(2) as pool:
            executor = CellExecutor(pool=pool)
            from repro.ptest.executor import WorkCell

            cells = [WorkCell("phil", seed) for seed in cells_seeds]
            cold = executor.run_cells({"phil": ref}, cells)
        with WorkerPool(2) as pool:
            pool.prewarm([ref], wait=True)
            executor = CellExecutor(pool=pool)
            from repro.ptest.executor import WorkCell

            cells = [WorkCell("phil", seed) for seed in cells_seeds]
            warm = executor.run_cells({"phil": ref}, cells)
        assert [r.ticks for r in cold] == [r.ticks for r in warm]
        assert [r.found_bug for r in cold] == [r.found_bug for r in warm]

    def test_nothing_warmable_submits_nothing(self):
        with WorkerPool(2) as pool:
            assert pool.prewarm([lambda seed: None, object()]) == 0
            assert pool.prewarmed_refs == 0
            assert pool.pool_id is None  # never even spawned

    def test_unpicklable_payload_skipped(self):
        registry = ScenarioRegistry()
        registry.register("local_spin", lambda seed, tasks=2: None)
        bound = registry.ref("local_spin", tasks=2)
        with WorkerPool(2) as pool:
            assert pool.prewarm([bound]) == 0
            assert pool.pool_id is None


class TestCellExecutorPrewarm:
    def test_serial_prewarm_is_a_noop(self):
        ref = scenario_ref("clean_spin", total_steps=40)
        assert CellExecutor(workers=1).prewarm({"spin": ref}) == 0
        assert CellExecutor().prewarm([ref]) == 0

    def test_one_wide_pool_resolves_serial_noop(self):
        # A 1-wide pool means run_cells would take the in-process path,
        # which never reads worker caches — nothing to warm.
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        with WorkerPool(1) as pool:
            assert CellExecutor(pool=pool).prewarm([ref]) == 0
            assert pool.prewarmed_refs == 0

    def test_explicit_pool_prewarm(self):
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        with WorkerPool(2) as pool:
            executor = CellExecutor(pool=pool)
            assert executor.prewarm({"spin": ref}, wait=True) == 1
            assert pool.prewarmed_refs == 1
            assert pool.spawns == 1

    def test_shared_pool_prewarm(self):
        from repro.ptest.pool import get_pool

        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        executor = CellExecutor(workers=2)
        assert executor.prewarm([ref], wait=True) == 1
        assert get_pool(2).prewarmed_refs == 1


class TestAdaptivePrewarmTelemetry:
    def adaptive(self, **kwargs):
        campaign = AdaptiveCampaign(
            seeds=(0, 1), rounds=2, policy=Repeat(), **kwargs
        )
        campaign.add_scenario("phil", "philosophers", chunk=1)
        return campaign

    def test_parallel_rounds_prewarm_by_default(self):
        with WorkerPool(2) as pool:
            result = self.adaptive(pool=pool).run()
        assert result.prewarmed_refs == 1  # one ref, one transition
        assert result.pool_stable

    def test_prewarm_disabled_ships_nothing(self):
        with WorkerPool(2) as pool:
            result = self.adaptive(pool=pool, prewarm=False).run()
            assert pool.prewarmed_refs == 0
        assert result.prewarmed_refs == 0

    def test_serial_rounds_never_prewarm(self):
        result = self.adaptive().run()
        assert result.prewarmed_refs == 0


# -- the acceptance matrix ------------------------------------------------------


def zoom_then_replay() -> PolicyPipeline:
    return PolicyPipeline(
        (
            PipelineStage(GridZoom(), rounds=2, name="zoom"),
            PipelineStage(
                ReplayFocus(ops=("cyclic",), max_sources=1),
                rounds=2,
                name="replay",
            ),
        )
    )


def pipeline_campaign(
    workers=None, batch_size=None, pool=None, prewarm=True
) -> AdaptiveCampaign:
    campaign = AdaptiveCampaign(
        seeds=(0, 1),
        rounds=4,
        policy=zoom_then_replay(),
        workers=workers,
        batch_size=batch_size,
        pool=pool,
        prewarm=prewarm,
    )
    campaign.add_grid("phil", "philosophers", {"chunk": [1, 2]})
    return campaign


def fingerprint(result):
    return (
        [dict(r.variants) for r in result.rounds],
        [r.rows for r in result.rounds],
        [r.detections for r in result.rounds],
        result.stopped_early,
    )


class TestComposedPipelineThroughEngine:
    def test_zoom_rounds_then_replay_rounds(self):
        result = pipeline_campaign(workers=1).run()
        assert len(result.rounds) == 4
        history = result.variant_history()
        # Rounds 1-2 are grid variants (round 2 zoomed to the winner),
        # rounds 3-4 are merged-pattern replay cells.
        assert history[0] == ("phil[chunk=1]", "phil[chunk=2]")
        assert all("replay[" in name for name in history[2])
        assert all("replay[" in name for name in history[3])
        assert all(
            isinstance(ref, ReplayRef)
            for ref in result.rounds[2].variants.values()
        )
        assert all(row.rate == 1.0 for row in result.final_rows)

    def test_stage_log_matches_round_ownership(self):
        pipeline = zoom_then_replay()
        campaign = AdaptiveCampaign(
            seeds=(0, 1), rounds=4, policy=pipeline
        )
        campaign.add_grid("phil", "philosophers", {"chunk": [1, 2]})
        campaign.run()
        assert pipeline.stage_log == [
            (0, "zoom"), (1, "zoom"), (2, "replay"),
        ]


class TestPipelinePrewarmDeterminismMatrix:
    """PR-5 acceptance: GridZoom -> ReplayFocus composed rounds are
    bit-identical at any (workers, batch_size, warm/cold, prewarm
    on/off), with one pool spawn per composed schedule."""

    def test_rounds_identical_across_all_configurations(self):
        reference = pipeline_campaign(workers=1).run()
        baseline = fingerprint(reference)
        assert len(reference.rounds) == 4  # full composed schedule ran
        for prewarm in (False, True):
            for batch_size in (1, None):
                serial = pipeline_campaign(
                    workers=1, batch_size=batch_size, prewarm=prewarm
                ).run()
                assert fingerprint(serial) == baseline, (
                    f"serial batch_size={batch_size} prewarm={prewarm}"
                )
                with WorkerPool(2) as pool:
                    cold = pipeline_campaign(
                        workers=None,
                        batch_size=batch_size,
                        pool=pool,
                        prewarm=prewarm,
                    ).run()
                    warm = pipeline_campaign(
                        workers=None,
                        batch_size=batch_size,
                        pool=pool,
                        prewarm=prewarm,
                    ).run()
                    spawns = pool.spawns
                assert fingerprint(cold) == baseline, (
                    f"cold pool batch_size={batch_size} prewarm={prewarm}"
                )
                assert fingerprint(warm) == baseline, (
                    f"warm pool batch_size={batch_size} prewarm={prewarm}"
                )
                # Two composed schedules back to back: still one spawn.
                assert spawns == 1
                if prewarm:
                    assert cold.prewarmed_refs > 0
                else:
                    assert cold.prewarmed_refs == 0

    def test_explicit_worker_counts_agree_too(self):
        reference = fingerprint(pipeline_campaign(workers=1).run())
        parallel = pipeline_campaign(workers=2, batch_size=1).run()
        assert fingerprint(parallel) == reference


# -- CLI integration ------------------------------------------------------------


class TestPipelineCli:
    def test_adapt_pipeline_prints_stages(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "adapt",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--pipeline",
                    "grid_zoom:2,replay:1",
                    "--max-sources",
                    "1",
                    "--grid",
                    "chunk=1,2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "pipeline=grid_zoom:2 -> replay:1" in output
        assert "3/3 round(s)" in output  # rounds default to the sum
        assert "stage=grid_zoom" in output
        assert "stage=replay" in output
        assert "replay[" in output

    def test_adapt_pipeline_no_prewarm_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "adapt",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--pipeline",
                    "repeat:2",
                    "--no-prewarm",
                ]
            )
            == 0
        )
        assert "prewarmed" not in capsys.readouterr().out

    def test_adapt_pipeline_unknown_policy_clean_error(self, capsys):
        from repro.cli import main

        assert (
            main(["adapt", "philosophers", "--pipeline", "bogus:2"]) == 2
        )
        output = capsys.readouterr().out
        assert "unknown pipeline policy 'bogus'" in output
        assert "grid_zoom" in output

    def test_adapt_unbounded_pipeline_needs_rounds(self, capsys):
        from repro.cli import main

        assert (
            main(["adapt", "philosophers", "--pipeline", "repeat"]) == 2
        )
        assert "--rounds" in capsys.readouterr().out

    def test_adapt_unbounded_pipeline_with_rounds_runs(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "adapt",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--pipeline",
                    "repeat",
                    "--rounds",
                    "2",
                ]
            )
            == 0
        )
        assert "2/2 round(s)" in capsys.readouterr().out
