"""Tests for pattern shrinking, campaigns and the CLI."""

from __future__ import annotations

import pytest

from repro.ptest.campaign import Campaign, compare_ops
from repro.ptest.detector import AnomalyKind
from repro.ptest.generator import PatternGenerator
from repro.ptest.harness import AdaptiveTest
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import TestPattern
from repro.ptest.shrink import PatternShrinker, truncate_merged
from repro.workloads.scenarios import lifecycle_pfa, philosophers_case2


def make_long_philosopher_merge(seed: int = 0):
    """A deliberately padded failing pattern for shrinking."""
    generator = PatternGenerator.from_pfa(
        lifecycle_pfa(("TC", "TS", "TR", "TS", "TR", "TS", "TR")), seed=seed
    )
    patterns = generator.generate_batch(3, 7)
    return PatternMerger(op="cyclic", chunk=2, seed=seed).merge(patterns)


class TestTruncateMerged:
    def test_keeps_prefixes_in_order(self):
        patterns = [
            TestPattern(pattern_id=0, symbols=("A1", "A2", "A3")),
            TestPattern(pattern_id=1, symbols=("B1", "B2")),
        ]
        merged = PatternMerger(op="round_robin").merge(patterns)
        cut = truncate_merged(merged, {0: 2, 1: 1})
        assert [c.symbol for c in cut] == ["A1", "B1", "A2"]

    def test_zero_keep_drops_pair_entirely(self):
        patterns = [
            TestPattern(pattern_id=0, symbols=("A1",)),
            TestPattern(pattern_id=1, symbols=("B1",)),
        ]
        merged = PatternMerger(op="round_robin").merge(patterns)
        cut = truncate_merged(merged, {0: 0, 1: 1})
        assert [c.symbol for c in cut] == ["B1"]

    def test_result_validates(self):
        merged = make_long_philosopher_merge()
        cut = truncate_merged(merged, {0: 3, 1: 2, 2: 1})
        assert len(cut) == 6  # validate() ran inside


class TestShrinker:
    def test_shrinks_philosopher_deadlock(self):
        scenario = philosophers_case2(seed=0)
        merged = make_long_philosopher_merge()
        # Confirm the padded pattern fails first.
        result = AdaptiveTest(
            config=scenario.config,
            programs=dict(scenario.programs),
            merged_override=merged,
        ).run()
        assert result.found_bug
        shrinker = PatternShrinker(
            config=scenario.config,
            programs=dict(scenario.programs),
            target=AnomalyKind.DEADLOCK,
        )
        shrunk = shrinker.shrink(merged)
        assert shrunk.shrunk_length < shrunk.original_length
        assert shrunk.reduction > 0.5
        # The minimal pattern still triggers the deadlock.
        confirm = AdaptiveTest(
            config=scenario.config,
            programs=dict(scenario.programs),
            merged_override=shrunk.shrunk,
        ).run()
        assert confirm.found_bug
        assert confirm.report.primary.kind is AnomalyKind.DEADLOCK

    def test_shrink_is_one_minimal(self):
        scenario = philosophers_case2(seed=0)
        merged = make_long_philosopher_merge()
        shrinker = PatternShrinker(
            config=scenario.config,
            programs=dict(scenario.programs),
            target=AnomalyKind.DEADLOCK,
        )
        shrunk = shrinker.shrink(merged).shrunk
        # Removing the last command of any pair must break the repro.
        keep = {p.pattern_id: len(p) for p in shrunk.sources}
        for pair_id in keep:
            if keep[pair_id] == 0:
                continue
            candidate = dict(keep)
            candidate[pair_id] -= 1
            result = AdaptiveTest(
                config=scenario.config,
                programs=dict(scenario.programs),
                merged_override=truncate_merged(shrunk, candidate),
            ).run()
            still_deadlocks = (
                result.found_bug
                and result.report.primary.kind is AnomalyKind.DEADLOCK
            )
            assert not still_deadlocks

    def test_budget_respected(self):
        scenario = philosophers_case2(seed=0)
        merged = make_long_philosopher_merge()
        shrinker = PatternShrinker(
            config=scenario.config,
            programs=dict(scenario.programs),
            target=AnomalyKind.DEADLOCK,
            max_runs=3,
        )
        shrinker.shrink(merged)
        assert shrinker.runs_executed <= 3


class TestCampaign:
    def test_campaign_aggregates(self):
        campaign = Campaign(seeds=(0, 1))
        campaign.add_variant(
            "buggy", lambda seed: philosophers_case2(seed=seed)
        )
        campaign.add_variant(
            "fixed", lambda seed: philosophers_case2(seed=seed, ordered=True)
        )
        rows = {row.variant: row for row in campaign.run()}
        assert rows["buggy"].rate == 1.0
        assert rows["fixed"].rate == 0.0
        assert rows["buggy"].kinds == ("deadlock",)
        assert campaign.kind_counts("buggy") == {"deadlock": 2}

    def test_duplicate_variant_rejected(self):
        campaign = Campaign()
        campaign.add_variant("x", lambda seed: philosophers_case2(seed=seed))
        with pytest.raises(ValueError):
            campaign.add_variant("x", lambda seed: philosophers_case2(seed=seed))

    def test_compare_ops_scores_expected_kind(self):
        rows = compare_ops(
            "philosophers",
            ops=("cyclic", "burst"),
            seeds=(0, 1),
            expected=AnomalyKind.DEADLOCK,
        )
        by_name = {row.variant: row for row in rows}
        assert by_name["cyclic"].detections == 2

    def test_campaign_scenario_variants(self):
        campaign = Campaign(seeds=(0, 1))
        campaign.add_scenario("buggy", "philosophers", op="cyclic")
        campaign.add_scenario("fixed", "philosophers", ordered=True)
        rows = {row.variant: row for row in campaign.run()}
        assert rows["buggy"].rate == 1.0
        assert rows["fixed"].rate == 0.0


class TestCli:
    def test_faults_lists_catalogue(self, capsys):
        from repro.cli import main

        assert main(["faults"]) == 0
        output = capsys.readouterr().out
        assert "gc_leak" in output and "cyclic_lock" in output

    def test_philosophers_returns_failure_code_on_bug(self, capsys):
        from repro.cli import main

        assert main(["philosophers", "--seed", "0"]) == 1
        assert "deadlock" in capsys.readouterr().out

    def test_philosophers_ordered_control_clean(self, capsys):
        from repro.cli import main

        assert main(["philosophers", "--ordered"]) == 0

    def test_fig1_bad_order(self, capsys):
        from repro.cli import main

        assert main(["fig1", "--order", "bad"]) == 1
        assert "unreachable" in capsys.readouterr().out

    def test_fig1_good_order(self, capsys):
        from repro.cli import main

        assert main(["fig1", "--order", "good"]) == 0

    def test_run_healthy(self, capsys):
        from repro.cli import main

        assert main(["run", "-n", "2", "-s", "4", "--seed", "1"]) == 0
        assert "no anomaly" in capsys.readouterr().out

    def test_run_scenario_by_name(self, capsys):
        from repro.cli import main

        assert main(["run", "philosophers", "-p", "op=cyclic"]) == 1
        assert "deadlock" in capsys.readouterr().out

    def test_run_scenario_param_override(self, capsys):
        from repro.cli import main

        assert main(["run", "philosophers", "-p", "ordered=true"]) == 0
        assert "no anomaly" in capsys.readouterr().out

    def test_run_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["run", "no_such_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_run_malformed_param(self, capsys):
        from repro.cli import main

        assert main(["run", "philosophers", "-p", "ordered"]) == 2
        assert "key=value" in capsys.readouterr().out

    def test_run_scenario_rejects_explicit_form_flags(self, capsys):
        from repro.cli import main

        assert main(["run", "philosophers", "--max-ticks", "100"]) == 2
        assert "--param" in capsys.readouterr().out

    def test_run_explicit_form_rejects_param(self, capsys):
        from repro.cli import main

        assert main(["run", "-n", "2", "-p", "op=cyclic"]) == 2
        assert "scenario name" in capsys.readouterr().out

    def test_campaign_bad_batch_size_clean_error(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "campaign",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--workers",
                    "2",
                    "--batch-size",
                    "0",
                ]
            )
            == 2
        )
        assert "batch_size" in capsys.readouterr().out

    def test_run_builder_rejection_exits_2_not_1(self, capsys):
        # Exit 1 means "bug found"; an out-of-range param must not
        # masquerade as one.
        from repro.cli import main

        assert main(["run", "barrier", "-p", "parties=1"]) == 2
        assert "parties must be >= 2" in capsys.readouterr().out

    def test_campaign_repeated_grid_key_clean_error(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "campaign",
                    "philosophers",
                    "-g",
                    "op=cyclic",
                    "-g",
                    "op=burst",
                ]
            )
            == 2
        )
        assert "more than once" in capsys.readouterr().out

    def test_campaign_repeated_grid_value_clean_error(self, capsys):
        from repro.cli import main

        assert (
            main(["campaign", "philosophers", "-g", "op=cyclic,cyclic"]) == 2
        )
        assert "already registered" in capsys.readouterr().out

    def test_campaign_fixed_and_grid_overlap_clean_error(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "campaign",
                    "philosophers",
                    "-p",
                    "ordered=true",
                    "-g",
                    "ordered=false,true",
                ]
            )
            == 2
        )
        assert "both fixed and in the grid" in capsys.readouterr().out

    def test_scenarios_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("philosophers", "barrier", "pipeline", "clean_spin"):
            assert name in output

    def test_campaign_command_with_grid(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "campaign",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--grid",
                    "ordered=false,true",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "philosophers[ordered=false]" in output
        assert "philosophers[ordered=true]" in output
        assert "deadlock" in output

    def test_campaign_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["campaign", "no_such_scenario"]) == 2

    def test_adapt_grid_zoom_narrows_rounds(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "adapt",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--rounds",
                    "2",
                    "--grid",
                    "ordered=false,true",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "policy=grid_zoom" in output
        assert "-- round 1" in output and "-- round 2" in output
        # Round 1 sweeps both halves; the zoom pins the buggy one.
        assert "philosophers[ordered=true]" in output
        assert "philosophers[ordered=false]" in output
        assert "deadlock" in output

    def test_adapt_replay_policy_emits_replay_cells(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "adapt",
                    "philosophers",
                    "--seeds",
                    "2",
                    "--rounds",
                    "2",
                    "--policy",
                    "replay",
                    "--max-sources",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "policy=replay" in output
        assert "replay[philosophers@s0/cyclic]" in output

    def test_adapt_unknown_scenario_clean_error(self, capsys):
        from repro.cli import main

        assert main(["adapt", "no_such_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_adapt_bad_rounds_clean_error(self, capsys):
        from repro.cli import main

        assert main(["adapt", "philosophers", "--rounds", "0"]) == 2
        assert "rounds" in capsys.readouterr().out

    def test_adapt_unknown_policy_exits_listing_choices(self, capsys):
        from repro.cli import main

        # argparse rejects the name up front: clean usage error (exit
        # 2) naming every registered policy, never a KeyError traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["adapt", "philosophers", "--policy", "nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in ("grid_zoom", "halving", "replay", "repeat"):
            assert name in err

    def test_adapt_unknown_policy_via_embedding_call(self, capsys):
        # Embedders invoking the handler with an unvalidated namespace
        # (bypassing argparse choices) get the ConfigError path: exit 2
        # and the POLICIES keys listed, not a KeyError.
        import argparse

        from repro.cli import _cmd_adapt

        args = argparse.Namespace(
            scenario="philosophers",
            rounds=None,
            policy="nope",
            pipeline=None,
            max_sources=2,
            seeds=2,
            workers=1,
            batch_size=None,
            param=None,
            grid=None,
            keep_pool=False,
            no_prewarm=False,
        )
        assert _cmd_adapt(args) == 2
        output = capsys.readouterr().out
        assert "unknown policy 'nope'" in output
        assert "grid_zoom" in output and "replay" in output

    def test_adapt_policy_and_pipeline_mutually_exclusive(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "adapt",
                    "philosophers",
                    "--policy",
                    "repeat",
                    "--pipeline",
                    "repeat:2",
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().out

    def test_sweep_unknown_fault(self, capsys):
        from repro.cli import main

        assert main(["sweep", "no_such_fault"]) == 2

    def test_sweep_cyclic_lock(self, capsys):
        from repro.cli import main

        assert main(["sweep", "cyclic_lock", "--seeds", "2"]) == 0
        assert "detected 2/2" in capsys.readouterr().out

    def test_campaign_shuts_shared_pool_down_by_default(self, capsys):
        from repro.cli import main
        from repro.ptest.pool import active_pools, shutdown_pools

        shutdown_pools()  # isolate from pools earlier tests left warm
        assert (
            main(
                [
                    "campaign",
                    "clean_spin",
                    "--seeds",
                    "3",
                    "--workers",
                    "2",
                    "-p",
                    "total_steps=40",
                ]
            )
            == 0
        )
        assert active_pools() == []  # deterministic CLI teardown

    def test_campaign_keep_pool_leaves_workers_warm(self, capsys):
        from repro.cli import main
        from repro.ptest.pool import active_pools, shutdown_pools

        shutdown_pools()  # isolate from pools earlier tests left warm
        try:
            assert (
                main(
                    [
                        "campaign",
                        "clean_spin",
                        "--seeds",
                        "3",
                        "--workers",
                        "2",
                        "-p",
                        "total_steps=40",
                        "--keep-pool",
                    ]
                )
                == 0
            )
            warm = active_pools()
            assert len(warm) == 1 and not warm[0].closed
        finally:
            shutdown_pools()

    def test_bench_forwards_flags_to_the_suite(self, capsys, monkeypatch):
        import repro.cli as cli

        calls = []
        monkeypatch.setattr(
            cli, "_load_bench_main", lambda: lambda argv: calls.append(argv) or 0
        )
        assert cli.main(["bench", "--quick"]) == 0
        assert cli.main(["bench", "--workers", "3"]) == 0
        assert calls == [
            ["--quick", "--workers", "4"],
            ["--workers", "3"],
        ]

    def test_bench_locates_the_real_suite(self):
        # The loader must resolve benchmarks/bench_perf_hotpaths.py in
        # the source checkout (the suite itself runs in CI, not here).
        from repro.cli import _load_bench_main

        assert callable(_load_bench_main())

    def test_bench_missing_suite_is_a_clean_error(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_load_bench_main", lambda: None)
        assert cli.main(["bench"]) == 2
        assert "not found" in capsys.readouterr().out
