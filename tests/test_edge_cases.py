"""Edge cases across modules: error hierarchy, detector debounce,
sampler restarts, merger chunks, trace rendering."""

from __future__ import annotations

import pytest

from repro import errors
from repro.bridge.bridge import build_bridge
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.programs import Acquire, Compute, Exit
from repro.pcore.services import ServiceCode
from repro.ptest.detector import AnomalyKind, BugDetector, DetectorConfig
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import TestPattern
from repro.sim.mailbox import MailboxBank

from repro.pcore.testkit import create_task, run_service


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.RegexSyntaxError,
            errors.AutomatonError,
            errors.DistributionError,
            errors.SamplingError,
            errors.SimulationError,
            errors.MailboxError,
            errors.MemoryError_,
            errors.KernelError,
            errors.ServiceError,
            errors.TaskLimitError,
            errors.KernelPanicError,
            errors.BridgeError,
            errors.ConfigError,
            errors.DetectorError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_one_catch_at_api_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.MailboxError("boom")

    def test_regex_error_carries_position(self):
        error = errors.RegexSyntaxError("bad", position=7)
        assert error.position == 7


class TestDetectorDebounce:
    def _cycle_kernel(self):
        kernel = PCoreKernel(config=KernelConfig())

        def grab(first, second):
            def program(ctx):
                yield Acquire(first)
                yield Compute(30)
                yield Acquire(second)
                yield Exit(0)

            return program

        kernel.register_program("g1", grab("ra", "rb"))
        kernel.register_program("g2", grab("rb", "ra"))
        t1 = create_task(kernel, priority=1, program="g1").value
        t2 = create_task(kernel, priority=2, program="g2").value
        for tick in range(3):
            kernel.step(tick)
        run_service(kernel, ServiceCode.TS, target=t2)
        for tick in range(3, 40):
            kernel.step(tick)
        run_service(kernel, ServiceCode.TR, target=t2)
        for tick in range(40, 80):
            kernel.step(tick)
        return kernel

    def test_confirmation_one_fires_on_first_sweep(self):
        kernel = self._cycle_kernel()
        bridge, _ = build_bridge(MailboxBank.omap5912(), kernel)
        detector = BugDetector(
            kernel=kernel,
            bridge=bridge,
            config=DetectorConfig(deadlock_confirmations=1),
        )
        found = detector.sweep(100)
        assert [a.kind for a in found] == [AnomalyKind.DEADLOCK]

    def test_high_confirmation_needs_repeat_sightings(self):
        kernel = self._cycle_kernel()
        bridge, _ = build_bridge(MailboxBank.omap5912(), kernel)
        detector = BugDetector(
            kernel=kernel,
            bridge=bridge,
            config=DetectorConfig(deadlock_confirmations=4),
        )
        for sweep in range(3):
            assert detector.sweep(100 + sweep) == []
        assert detector.sweep(104) != []


class TestSamplerRestart:
    def test_restart_counts_restarts(self, fig3_pfa):
        from repro.automata.sampling import PatternSampler

        sampled = PatternSampler(fig3_pfa, seed=0, on_final="restart").sample(60)
        # Expected lifecycle ~2 symbols; 60 symbols mean many restarts.
        assert sampled.restarts >= 10
        assert len(sampled.states) == len(sampled.symbols) + 1 + sampled.restarts


class TestMergerChunks:
    def test_chunk_larger_than_pattern_degenerates_to_burst(self):
        patterns = [
            TestPattern(pattern_id=0, symbols=("A1", "A2")),
            TestPattern(pattern_id=1, symbols=("B1", "B2")),
        ]
        cyclic = PatternMerger(op="cyclic", chunk=99).merge(patterns)
        burst = PatternMerger(op="burst").merge(patterns)
        assert [c.symbol for c in cyclic] == [c.symbol for c in burst]

    def test_chunk_one_equals_round_robin(self):
        patterns = [
            TestPattern(pattern_id=0, symbols=("A1", "A2")),
            TestPattern(pattern_id=1, symbols=("B1", "B2")),
        ]
        cyclic = PatternMerger(op="cyclic", chunk=1).merge(patterns)
        rr = PatternMerger(op="round_robin").merge(patterns)
        assert [c.symbol for c in cyclic] == [c.symbol for c in rr]

    def test_single_pattern_merge_is_identity(self):
        pattern = TestPattern(pattern_id=0, symbols=("TC", "TS", "TR"))
        for op in ("round_robin", "random", "cyclic", "burst", "weighted"):
            merged = PatternMerger(op=op, seed=1).merge([pattern])
            assert [c.symbol for c in merged] == ["TC", "TS", "TR"]


class TestKernelTracing:
    def test_kernel_events_reach_the_tracer(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        kernel = PCoreKernel(config=KernelConfig(), tracer=tracer)
        tid = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TS, target=tid)
        run_service(kernel, ServiceCode.TR, target=tid)
        run_service(kernel, ServiceCode.TD, target=tid)
        events = [e.payload.get("event") for e in tracer.filter(category="task")]
        assert "create" in events
        assert "suspend" in events
        assert "resume" in events
        assert "terminate" in events

    def test_panic_traced(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        kernel = PCoreKernel(config=KernelConfig(), tracer=tracer)
        kernel.panic("boom")
        kernel_events = tracer.filter(category="kernel")
        assert any(e.payload.get("event") == "panic" for e in kernel_events)


class TestWaitForDot:
    def test_deadlock_report_includes_wait_for_graph(self):
        from repro.workloads.scenarios import philosophers_case2

        result = philosophers_case2(seed=0).run()
        dot = result.report.wait_for_dot
        assert dot.startswith("digraph wait_for")
        for fork in ("fork0", "fork1", "fork2"):
            assert fork in dot
        for phil in ("phil0", "phil1", "phil2"):
            assert phil in dot
        assert result.report.to_dict()["wait_for_dot"] == dot

    def test_empty_graph_renders(self):
        kernel = PCoreKernel(config=KernelConfig())
        bridge, _ = build_bridge(MailboxBank.omap5912(), kernel)
        detector = BugDetector(kernel=kernel, bridge=bridge)
        dot = detector.wait_for_dot()
        assert dot.startswith("digraph wait_for")
        assert "->" not in dot
