"""Property-based tests (hypothesis) for the automata pipeline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import minimize_dfa, nfa_to_dfa
from repro.automata.distributions import TransitionDistribution
from repro.automata.nfa import regex_to_nfa
from repro.automata.pfa import build_pfa
from repro.automata.regex_ast import (
    Concat,
    Literal,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.automata.regex_parser import parse_regex
from repro.automata.sampling import PatternSampler

SYMBOLS = ["a", "b", "c", "TC", "TS", "TR", "TCH", "TD", "TY"]


def regex_nodes(max_depth: int = 4) -> st.SearchStrategy[RegexNode]:
    """Random regex ASTs over the symbol pool."""
    literals = st.sampled_from(SYMBOLS).map(Literal)

    def extend(children: st.SearchStrategy[RegexNode]):
        return st.one_of(
            st.tuples(children, children).map(lambda p: Concat(*p)),
            st.tuples(children, children).map(lambda p: Union(*p)),
            children.map(Star),
            children.map(Plus),
            children.map(Optional_),
        )

    return st.recursive(literals, extend, max_leaves=8)


def words_over(symbols: list[str], max_size: int = 6):
    return st.lists(st.sampled_from(symbols), max_size=max_size)


def _canonical(node: RegexNode):
    """Flatten associativity of Concat/Union so structurally different
    but equivalent nestings compare equal."""
    if isinstance(node, Concat):
        parts = []
        for child in (node.left, node.right):
            flat = _canonical(child)
            if isinstance(flat, tuple) and flat and flat[0] == "concat":
                parts.extend(flat[1])
            else:
                parts.append(flat)
        return ("concat", tuple(parts))
    if isinstance(node, Union):
        parts = []
        for child in (node.left, node.right):
            flat = _canonical(child)
            if isinstance(flat, tuple) and flat and flat[0] == "union":
                parts.extend(flat[1])
            else:
                parts.append(flat)
        return ("union", tuple(parts))
    if isinstance(node, Star):
        return ("star", _canonical(node.child))
    if isinstance(node, Plus):
        return ("plus", _canonical(node.child))
    if isinstance(node, Optional_):
        return ("opt", _canonical(node.child))
    return ("lit", node.symbol) if isinstance(node, Literal) else ("other",)


@given(node=regex_nodes())
@settings(max_examples=150, deadline=None)
def test_to_string_parse_roundtrip(node: RegexNode):
    """Rendering an AST and re-parsing it yields an equivalent AST
    (equal up to concat/union associativity)."""
    assert _canonical(parse_regex(node.to_string())) == _canonical(node)


@given(node=regex_nodes(), word=words_over(SYMBOLS))
@settings(max_examples=150, deadline=None)
def test_nfa_and_dfa_agree(node: RegexNode, word: list[str]):
    """Subset construction preserves the language."""
    nfa = regex_to_nfa(node)
    dfa = nfa_to_dfa(nfa)
    assert nfa.accepts_word(word) == dfa.accepts_word(word)


@given(node=regex_nodes(), word=words_over(SYMBOLS))
@settings(max_examples=150, deadline=None)
def test_minimization_preserves_language(node: RegexNode, word: list[str]):
    dfa = nfa_to_dfa(regex_to_nfa(node))
    mini = minimize_dfa(dfa)
    assert dfa.accepts_word(word) == mini.accepts_word(word)
    assert mini.num_states <= dfa.num_states


@given(node=regex_nodes())
@settings(max_examples=100, deadline=None)
def test_nullable_agrees_with_nfa_on_empty_word(node: RegexNode):
    """AST nullability is exactly NFA acceptance of the empty word."""
    assert node.nullable() == regex_to_nfa(node).accepts_word([])


@given(
    node=regex_nodes(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=150, deadline=None)
def test_sampled_patterns_are_valid_prefix_walks(node, seed, size):
    """Every sampled pattern is a positive-probability walk of its PFA
    (the paper's guarantee: patterns are services 'arranged in rational
    order')."""
    dfa = nfa_to_dfa(regex_to_nfa(node))
    if not dfa.transitions.get(dfa.start):
        return  # start state absorbing: sampler rejects it by design
    pfa = build_pfa(dfa)
    sampled = PatternSampler(pfa, seed=seed).sample(size)
    assert pfa.walk_probability(sampled.symbols) > 0.0
    assert len(sampled.symbols) <= size


@given(
    weights=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(min_value=0.01, max_value=100.0),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=100, deadline=None)
def test_normalized_rows_sum_to_one(weights):
    dist = TransitionDistribution()
    for symbol, weight in weights.items():
        dist.set(0, symbol, weight)
    row = dist.normalized().row(0)
    assert sum(row.values()) == pytest.approx(1.0)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=100, deadline=None)
def test_restart_sampler_always_fills(fig3_pfa_factory, seed, size):
    sampled = PatternSampler(
        fig3_pfa_factory(), seed=seed, on_final="restart"
    ).sample(size)
    assert len(sampled.symbols) == size


@pytest.fixture(scope="module")
def fig3_pfa_factory():
    from repro.automata.pfa import PFA, Transition

    def factory() -> PFA:
        transitions = {
            0: {
                "a": Transition(source=0, symbol="a", target=1, probability=0.6),
                "b": Transition(source=0, symbol="b", target=2, probability=0.4),
            },
            1: {
                "c": Transition(source=1, symbol="c", target=1, probability=0.3),
                "d": Transition(source=1, symbol="d", target=2, probability=0.7),
            },
        }
        return PFA(
            num_states=3,
            alphabet=frozenset("abcd"),
            transitions=transitions,
            start=0,
            accepts=frozenset({2}),
        )

    return factory
