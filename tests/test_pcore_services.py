"""Tests for the Table I kernel services (semantics and error paths)."""

from __future__ import annotations

import pytest

from repro.pcore.kernel import PCoreKernel
from repro.pcore.services import (
    SERVICE_ABBREVIATIONS,
    ServiceCode,
    ServiceStatus,
)
from repro.pcore.tcb import TaskState

from repro.pcore.testkit import create_task, run_service


class TestTableI:
    def test_all_six_services_exist(self):
        assert SERVICE_ABBREVIATIONS == {
            "TC": "task_create",
            "TD": "task_delete",
            "TS": "task_suspend",
            "TR": "task_resume",
            "TCH": "task_chanprio",
            "TY": "task_yield",
        }

    def test_abbreviation_lookup(self):
        assert ServiceCode.from_abbreviation("TCH") is ServiceCode.TCH
        with pytest.raises(KeyError):
            ServiceCode.from_abbreviation("XX")


class TestTaskCreate:
    def test_create_returns_tid_and_ready(self, kernel):
        result = create_task(kernel, priority=5)
        assert result.ok
        assert kernel.tasks[result.value].state is TaskState.READY

    def test_create_respects_requested_tid(self, kernel):
        result = create_task(kernel, priority=5, target=9)
        assert result.value == 9

    def test_sixteen_task_limit(self, kernel):
        for index in range(16):
            assert create_task(kernel, priority=index).ok
        overflow = create_task(kernel, priority=99)
        assert overflow.status is ServiceStatus.TASK_LIMIT

    def test_limit_frees_after_delete(self, kernel):
        tids = [create_task(kernel, priority=i).value for i in range(16)]
        run_service(kernel, ServiceCode.TD, target=tids[0])
        assert create_task(kernel, priority=99).ok

    def test_unique_priority_enforced(self, kernel):
        assert create_task(kernel, priority=7).ok
        duplicate = create_task(kernel, priority=7)
        assert duplicate.status is ServiceStatus.BAD_PRIORITY

    def test_priority_reusable_after_death(self, kernel):
        tid = create_task(kernel, priority=7).value
        run_service(kernel, ServiceCode.TD, target=tid)
        assert create_task(kernel, priority=7).ok

    def test_missing_priority_rejected(self, kernel):
        result = kernel.execute_service(
            __import__(
                "repro.pcore.services", fromlist=["ServiceRequest"]
            ).ServiceRequest(service=ServiceCode.TC)
        )
        assert result.status is ServiceStatus.BAD_PRIORITY

    def test_unknown_program_falls_back_to_idle(self, kernel):
        result = create_task(kernel, priority=3, program="no_such_program")
        assert result.ok

    def test_tids_recycle(self, kernel):
        first = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TD, target=first)
        second = create_task(kernel, priority=2).value
        assert second == first  # smallest free tid


class TestTaskDelete:
    def test_delete_live_task(self, kernel):
        tid = create_task(kernel, priority=1).value
        result = run_service(kernel, ServiceCode.TD, target=tid)
        assert result.ok
        assert tid not in kernel.tasks

    def test_delete_unknown_task(self, kernel):
        result = run_service(kernel, ServiceCode.TD, target=99)
        assert result.status is ServiceStatus.NO_SUCH_TASK

    def test_delete_removes_from_ready_queue(self, kernel):
        tid = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TD, target=tid)
        assert all(t.tid != tid for t in kernel.scheduler.ready_tasks())

    def test_double_delete_fails(self, kernel):
        tid = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TD, target=tid)
        second = run_service(kernel, ServiceCode.TD, target=tid)
        assert second.status is ServiceStatus.NO_SUCH_TASK


class TestSuspendResume:
    def test_suspend_ready_task(self, kernel):
        tid = create_task(kernel, priority=1).value
        result = run_service(kernel, ServiceCode.TS, target=tid)
        assert result.ok
        assert kernel.tasks[tid].state is TaskState.SUSPENDED

    def test_double_suspend_is_illegal(self, kernel):
        tid = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TS, target=tid)
        second = run_service(kernel, ServiceCode.TS, target=tid)
        assert second.status is ServiceStatus.ILLEGAL_STATE

    def test_resume_requires_suspended(self, kernel):
        # "The task resuming operation can be performed only when the
        # corresponding task is suspended."
        tid = create_task(kernel, priority=1).value
        result = run_service(kernel, ServiceCode.TR, target=tid)
        assert result.status is ServiceStatus.ILLEGAL_STATE

    def test_suspend_resume_roundtrip(self, kernel):
        tid = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TS, target=tid)
        result = run_service(kernel, ServiceCode.TR, target=tid)
        assert result.ok
        assert kernel.tasks[tid].state is TaskState.READY

    def test_suspend_running_task(self, kernel):
        tid = create_task(kernel, priority=1).value
        kernel.step(0)  # dispatches the task
        assert kernel.tasks[tid].state is TaskState.RUNNING
        result = run_service(kernel, ServiceCode.TS, target=tid)
        assert result.ok
        assert kernel.tasks[tid].state is TaskState.SUSPENDED

    def test_suspend_unknown(self, kernel):
        assert (
            run_service(kernel, ServiceCode.TS, target=42).status
            is ServiceStatus.NO_SUCH_TASK
        )

    def test_resume_unknown(self, kernel):
        assert (
            run_service(kernel, ServiceCode.TR, target=42).status
            is ServiceStatus.NO_SUCH_TASK
        )


class TestChangePriority:
    def test_chanprio_updates_priority(self, kernel):
        tid = create_task(kernel, priority=1).value
        result = run_service(kernel, ServiceCode.TCH, target=tid, priority=9)
        assert result.ok
        assert kernel.tasks[tid].priority == 9

    def test_chanprio_reorders_ready_queue(self, kernel):
        low = create_task(kernel, priority=1).value
        high = create_task(kernel, priority=5).value
        run_service(kernel, ServiceCode.TCH, target=low, priority=10)
        ready = kernel.scheduler.ready_tasks()
        assert ready[0].tid == low
        assert ready[1].tid == high

    def test_chanprio_uniqueness(self, kernel):
        first = create_task(kernel, priority=1).value
        create_task(kernel, priority=2)
        result = run_service(kernel, ServiceCode.TCH, target=first, priority=2)
        assert result.status is ServiceStatus.BAD_PRIORITY

    def test_chanprio_to_own_priority_allowed(self, kernel):
        tid = create_task(kernel, priority=4).value
        assert run_service(kernel, ServiceCode.TCH, target=tid, priority=4).ok

    def test_chanprio_unknown_task(self, kernel):
        result = run_service(kernel, ServiceCode.TCH, target=42, priority=1)
        assert result.status is ServiceStatus.NO_SUCH_TASK


class TestTaskYield:
    def test_yield_terminates_running_task(self, kernel):
        tid = create_task(kernel, priority=1).value
        kernel.step(0)
        result = run_service(kernel, ServiceCode.TY)
        assert result.ok
        assert result.value == tid
        assert tid not in kernel.tasks

    def test_yield_with_no_tasks(self, kernel):
        result = run_service(kernel, ServiceCode.TY)
        assert result.status is ServiceStatus.NO_RUNNING_TASK

    def test_yield_picks_next_runnable_when_none_running(self, kernel):
        create_task(kernel, priority=1)
        high = create_task(kernel, priority=9).value
        result = run_service(kernel, ServiceCode.TY)
        assert result.ok
        assert result.value == high  # the task that would run next

    def test_targeted_yield_terminates_that_task(self, kernel):
        tid = create_task(kernel, priority=1).value
        create_task(kernel, priority=9)
        result = run_service(kernel, ServiceCode.TY, target=tid)
        assert result.ok and result.value == tid
        assert tid not in kernel.tasks

    def test_targeted_yield_unknown(self, kernel):
        result = run_service(kernel, ServiceCode.TY, target=77)
        assert result.status is ServiceStatus.NO_SUCH_TASK


class TestKernelDown:
    def test_services_refused_after_panic(self, kernel):
        kernel.panic("test-induced")
        result = create_task(kernel, priority=1)
        assert result.status is ServiceStatus.KERNEL_DOWN

    def test_stats_table_counts(self, kernel):
        create_task(kernel, priority=1)
        create_task(kernel, priority=1)  # BAD_PRIORITY
        rows = {row[0]: row for row in kernel.stats.table()}
        assert rows["TC"][2] == 2  # invoked
        assert rows["TC"][3] == 1  # succeeded
        assert rows["TC"][4] == 1  # failed
