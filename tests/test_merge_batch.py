"""The array-native merge plane's bit-identity contract.

:class:`~repro.ptest.merger.PatternMerger` promises that the array
assembly path (numpy present) produces *exactly* the merge the scalar
reference loop produces — same commands, same errors, same RNG draw
order for the stochastic ops — for every registered op, built-in or
custom.  These tests sweep that promise over the full op × chunk ×
ragged-length matrix (empty and singleton patterns included) in three
modes (``use_numpy=True``, ``use_numpy=False``, and the
``REPRO_NO_NUMPY`` environment kill switch), then cover the data types
underneath: lazy array-backed :class:`TestPattern` /
:class:`MergedPattern` (O(1) length, frozen surface, numpy-free
pickles), the zero-copy interned-alphabet path from
:class:`~repro.automata.batch.PatternBatch` rows, and the
:meth:`merge_batch` fresh-RNG-per-group contract.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.automata.batch import (
    NO_NUMPY_ENV,
    BatchSampler,
    numpy_available,
    packed_rows,
)
from repro.automata.compiled import CompiledPFA
from repro.errors import ConfigError
from repro.ptest.generator import PatternGenerator, SharedPatternBatch
from repro.ptest.merger import (
    MERGE_OPS,
    PatternMerger,
    register_merge_op,
)
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern
from repro.ptest.pcore_model import pcore_pfa

ALPHABET = ("TC", "TS", "TR", "TD", "TCH")

#: Ragged length profiles: all-empty, singleton, empty-mixed-with-long,
#: equal lengths, a wide spread, and a lone short pattern.
LENGTH_SETS = (
    (0,),
    (1,),
    (0, 4, 1),
    (6, 6),
    (5, 3, 0, 2, 7),
    (2,),
)

CHUNKS = (1, 3, 7)

MERGE_SEED = 97


def make_patterns(lengths) -> list[TestPattern]:
    """Eager patterns with deterministic, per-pattern-distinct symbols."""
    return [
        TestPattern(
            pattern_id=i,
            symbols=tuple(
                ALPHABET[(i * 3 + j) % len(ALPHABET)] for j in range(n)
            ),
            log_probability=-0.5 * i,
        )
        for i, n in enumerate(lengths)
    ]


def merged_equal(a: MergedPattern, b: MergedPattern) -> None:
    assert a == b
    assert a.commands == b.commands
    assert a.per_pattern_counts() == b.per_pattern_counts()
    assert a.describe() == b.describe()
    a.validate()
    b.validate()


def _order_reversed_burst(patterns, rng, chunk):
    """Custom deterministic op: whole patterns, last source first."""
    del rng, chunk
    order = []
    for pattern in reversed(patterns):
        order.extend([pattern.pattern_id] * len(pattern))
    return order


def _order_rng_shuffled(patterns, rng, chunk):
    """Custom stochastic op: a round-robin order shuffled in place —
    consumes RNG draws, so the array path must replay them exactly."""
    del chunk
    order = []
    for pattern in patterns:
        order.extend([pattern.pattern_id] * len(pattern))
    rng.shuffle(order)
    return order


@pytest.fixture
def custom_ops():
    names = ("reversed_burst_test", "rng_shuffled_test")
    register_merge_op(names[0], _order_reversed_burst)
    register_merge_op(names[1], _order_rng_shuffled)
    yield names
    for name in names:
        MERGE_OPS.pop(name, None)


@pytest.fixture(scope="module")
def compiled() -> CompiledPFA:
    return CompiledPFA.from_pfa(pcore_pfa())


def assert_all_modes_match(op, chunk, lengths, monkeypatch):
    """Scalar loop is the reference; the array path and the env-masked
    path must reproduce it bit for bit."""
    patterns = make_patterns(lengths)
    scalar = PatternMerger(
        op=op, seed=MERGE_SEED, chunk=chunk, use_numpy=False
    ).merge(make_patterns(lengths))
    if numpy_available():
        arrays = PatternMerger(
            op=op, seed=MERGE_SEED, chunk=chunk, use_numpy=True
        ).merge(patterns)
        # Genuinely array-backed: nothing materialised yet.
        assert arrays._commands is None
        assert len(arrays) == len(scalar)
        merged_equal(arrays, scalar)
    monkeypatch.setenv(NO_NUMPY_ENV, "1")
    masked = PatternMerger(op=op, seed=MERGE_SEED, chunk=chunk).merge(
        make_patterns(lengths)
    )
    monkeypatch.delenv(NO_NUMPY_ENV)
    merged_equal(masked, scalar)


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("lengths", LENGTH_SETS)
    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize("op", sorted(MERGE_OPS))
    def test_builtin_ops(self, op, chunk, lengths, monkeypatch):
        assert_all_modes_match(op, chunk, lengths, monkeypatch)

    @pytest.mark.parametrize("lengths", LENGTH_SETS)
    @pytest.mark.parametrize("which", [0, 1])
    def test_custom_ops_route_through_array_assembly(
        self, custom_ops, which, lengths, monkeypatch
    ):
        assert_all_modes_match(custom_ops[which], 2, lengths, monkeypatch)

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    @pytest.mark.parametrize("op", ["round_robin", "cyclic", "burst"])
    def test_array_backed_inputs_merge_identically(self, compiled, op):
        """The zero-copy plane: patterns built from a PatternBatch's id
        rows (shared interned alphabet) merge to the same result as
        their eager twins."""
        seeds = (11, 12, 13, 14)
        shared = SharedPatternBatch(compiled, seeds, size=9)
        array_backed = [
            shared.stream(cell).generate(9, pattern_id=cell)
            for cell in range(len(seeds))
        ]
        eager = [
            PatternGenerator.from_pfa(compiled, seed=seed).generate(
                9, pattern_id=cell
            )
            for cell, seed in enumerate(seeds)
        ]
        assert array_backed == eager
        table = packed_rows(compiled).alphabet
        for pattern in array_backed:
            assert pattern.alphabet is table
            assert pattern.symbol_ids is not None
        merger = PatternMerger(op=op, seed=MERGE_SEED, chunk=3)
        merged_equal(
            merger.merge(array_backed),
            PatternMerger(
                op=op, seed=MERGE_SEED, chunk=3, use_numpy=False
            ).merge(eager),
        )


class TestArrayPathErrors:
    def test_explicit_numpy_request_raises_when_masked(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        merger = PatternMerger(use_numpy=True)
        with pytest.raises(ConfigError, match="requires numpy"):
            merger.merge(make_patterns((2, 2)))

    @pytest.mark.parametrize(
        "use_numpy", [False, None], ids=["scalar", "auto"]
    )
    def test_over_consuming_op_raises_on_both_paths(
        self, custom_ops, use_numpy
    ):
        del custom_ops

        def greedy(patterns, rng, chunk):
            del rng, chunk
            return [patterns[0].pattern_id] * (len(patterns[0]) + 1)

        register_merge_op("greedy_test", greedy)
        try:
            merger = PatternMerger(op="greedy_test", use_numpy=use_numpy)
            with pytest.raises(ConfigError, match="over-consumed"):
                merger.merge(make_patterns((3,)))
        finally:
            MERGE_OPS.pop("greedy_test", None)

    @pytest.mark.parametrize(
        "use_numpy", [False, None], ids=["scalar", "auto"]
    )
    def test_under_consuming_op_raises_on_both_paths(self, use_numpy):
        def lazy(patterns, rng, chunk):
            del rng, chunk
            return [patterns[0].pattern_id] * (len(patterns[0]) - 1)

        register_merge_op("lazy_test", lazy)
        try:
            merger = PatternMerger(op="lazy_test", use_numpy=use_numpy)
            with pytest.raises(ConfigError, match="only merged"):
                merger.merge(make_patterns((3,)))
        finally:
            MERGE_OPS.pop("lazy_test", None)

    @pytest.mark.parametrize(
        "use_numpy", [False, None], ids=["scalar", "auto"]
    )
    def test_unknown_id_in_order_raises_on_both_paths(self, use_numpy):
        def rogue(patterns, rng, chunk):
            del rng, chunk
            return [999] * len(patterns[0])

        register_merge_op("rogue_test", rogue)
        try:
            merger = PatternMerger(op="rogue_test", use_numpy=use_numpy)
            with pytest.raises(KeyError):
                merger.merge(make_patterns((2,)))
        finally:
            MERGE_OPS.pop("rogue_test", None)

    @pytest.mark.parametrize(
        "use_numpy", [False, None], ids=["scalar", "auto"]
    )
    def test_cyclic_chunk_validation_on_both_paths(self, use_numpy):
        merger = PatternMerger(op="cyclic", chunk=0, use_numpy=use_numpy)
        with pytest.raises(ConfigError, match="chunk must be >= 1"):
            merger.merge(make_patterns((2, 2)))

    def test_empty_list_and_duplicate_ids_rejected(self):
        merger = PatternMerger()
        with pytest.raises(ConfigError, match="empty pattern list"):
            merger.merge([])
        twin = make_patterns((2,))[0]
        with pytest.raises(ConfigError, match="ids must be unique"):
            merger.merge([twin, twin])


class TestTestPatternArrayBacked:
    def _twins(self):
        eager = TestPattern(
            pattern_id=3,
            symbols=("TC", "TS", "TC"),
            states=(0, 1, 2),
            log_probability=-1.25,
        )
        lazy = TestPattern.from_ids(
            pattern_id=3,
            symbol_ids=[0, 1, 0],
            alphabet=("TC", "TS"),
            state_ids=[0, 1, 2],
            log_probability=-1.25,
        )
        return eager, lazy

    def test_lazy_materialisation_and_o1_len(self):
        eager, lazy = self._twins()
        assert lazy._symbols is None
        assert len(lazy) == 3
        assert lazy._symbols is None  # len() did not materialise
        assert lazy.symbols == eager.symbols
        assert lazy._symbols is not None  # cached after first read
        assert lazy.states == eager.states

    def test_eq_hash_repr_match_eager_twin(self):
        eager, lazy = self._twins()
        assert lazy == eager
        assert hash(lazy) == hash(eager)
        assert repr(lazy) == repr(eager)
        assert lazy.describe() == eager.describe()
        assert lazy.subsequence_after(1) == eager.subsequence_after(1)

    def test_pickle_is_numpy_free_and_round_trips(self):
        eager, lazy = self._twins()
        clone = pickle.loads(pickle.dumps(lazy))
        assert clone == eager
        assert clone.symbol_ids is None  # wire format is eager tuples
        assert clone.alphabet is None

    def test_frozen_surface(self):
        _, lazy = self._twins()
        with pytest.raises(Exception) as excinfo:
            lazy.pattern_id = 9
        assert "cannot assign" in str(excinfo.value)
        with pytest.raises(Exception):
            del lazy.pattern_id

    def test_negative_id_rejected_by_both_constructors(self):
        with pytest.raises(ConfigError, match=">= 0"):
            TestPattern(pattern_id=-1, symbols=("TC",))
        with pytest.raises(ConfigError, match=">= 0"):
            TestPattern.from_ids(
                pattern_id=-1, symbol_ids=[0], alphabet=("TC",)
            )


class TestMergedPatternArrayBacked:
    def _merged(self):
        sources = make_patterns((2, 1))
        eager = PatternMerger(use_numpy=False).merge(
            make_patterns((2, 1))
        )
        lazy = MergedPattern.from_arrays(
            op="round_robin",
            sources=sources,
            pattern_ids=[c.pattern_id for c in eager.commands],
            sequences=[c.sequence_in_pattern for c in eager.commands],
            symbol_ids=[ALPHABET.index(c.symbol) for c in eager.commands],
            alphabet=ALPHABET,
        )
        return eager, lazy

    def test_len_and_counts_without_materialising(self):
        eager, lazy = self._merged()
        assert len(lazy) == len(eager)
        assert lazy.per_pattern_counts() == eager.per_pattern_counts()
        assert lazy._commands is None
        assert list(lazy) == eager.commands
        assert lazy._commands is not None

    def test_validate_eq_and_pickle(self):
        eager, lazy = self._merged()
        lazy.validate()
        assert lazy == eager
        clone = pickle.loads(pickle.dumps(lazy))
        assert clone == eager
        assert clone._commands is not None  # wire format is commands
        assert all(
            isinstance(c, PatternCommand) for c in clone.commands
        )


class TestMergeBatch:
    @pytest.mark.parametrize("op", ["cyclic", "random", "weighted"])
    def test_equals_independent_merges(self, op):
        groups = [make_patterns(lengths) for lengths in LENGTH_SETS]
        merger = PatternMerger(op=op, seed=MERGE_SEED, chunk=3)
        batched = merger.merge_batch(groups)
        assert len(batched) == len(groups)
        for group, got in zip(groups, batched):
            # Fresh RNG per group: each result equals a lone merge().
            want = PatternMerger(op=op, seed=MERGE_SEED, chunk=3).merge(
                list(group)
            )
            merged_equal(got, want)

    def test_empty_group_list_is_empty_result(self):
        assert PatternMerger().merge_batch([]) == []

    def test_rng_draw_order_is_per_merge(self):
        """Two stochastic merges in one batch must not share draws:
        the second group's result is what a fresh seed produces, not a
        continuation of the first group's stream."""
        group = make_patterns((4, 4))
        merger = PatternMerger(op="random", seed=5)
        first, second = merger.merge_batch(
            [make_patterns((4, 4)), make_patterns((4, 4))]
        )
        lone = PatternMerger(op="random", seed=5).merge(group)
        assert first.commands == lone.commands
        assert second.commands == lone.commands


def test_rng_contract_documented_ops_consume_identically():
    """The RNG-order contract itself: a stochastic scalar order run
    against a fresh Random(seed) leaves the RNG in the same state the
    array path's replay does — proven by the next draw agreeing."""
    if not numpy_available():
        pytest.skip("needs numpy to compare against the array path")
    patterns = make_patterns((3, 5, 2))
    for op in ("random", "weighted"):
        rng_scalar = random.Random(MERGE_SEED)
        MERGE_OPS[op](patterns, rng_scalar, 2)
        # The array path runs the same order function with the same
        # fresh RNG; merge() then never draws again.
        rng_array = random.Random(MERGE_SEED)
        MERGE_OPS[op](patterns, rng_array, 2)
        assert rng_scalar.random() == rng_array.random()
