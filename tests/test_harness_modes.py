"""Tests for harness/committer operating modes and platform knobs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.ptest.config import PTestConfig
from repro.ptest.harness import run_adaptive_test
from repro.workloads.scenarios import stress_case1


class TestFireAndForget:
    def test_completes_and_drains(self):
        config = PTestConfig(
            pattern_count=4,
            pattern_size=6,
            seed=5,
            max_ticks=20_000,
            lockstep=False,
        )
        result = run_adaptive_test(config)
        assert result.commands_issued == result.merged_length
        assert result.commands_completed == result.commands_issued
        assert result.ticks < 20_000  # finished before the budget

    def test_faster_master_finishes_sooner_or_equal(self):
        base = PTestConfig(
            pattern_count=4, pattern_size=6, seed=5, max_ticks=20_000,
            lockstep=False,
        )
        fast = PTestConfig(
            pattern_count=4, pattern_size=6, seed=5, max_ticks=20_000,
            lockstep=False, master_steps_per_tick=4,
        )
        assert run_adaptive_test(fast).ticks <= run_adaptive_test(base).ticks

    def test_small_mailbox_causes_stalls_with_fast_master(self):
        config = PTestConfig(
            pattern_count=8,
            pattern_size=8,
            seed=5,
            max_ticks=20_000,
            lockstep=False,
            master_steps_per_tick=4,
            mailbox_capacity=1,
        )
        result = run_adaptive_test(config)
        assert result.command_stalls > 0

    def test_lockstep_never_stalls_at_default_depth(self):
        config = PTestConfig(
            pattern_count=4, pattern_size=6, seed=5, max_ticks=20_000
        )
        result = run_adaptive_test(config)
        assert result.command_stalls == 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pattern_count": 0},
            {"pattern_size": 0},
            {"op": "bogus"},
            {"max_ticks": 0},
            {"reply_timeout": 0},
            {"progress_window": 0},
            {"detector_interval": 0},
            {"noise_ticks": -1},
            {"mailbox_capacity": 0},
            {"master_steps_per_tick": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            PTestConfig(**kwargs)

    def test_with_seed_copies(self):
        config = PTestConfig(seed=1)
        other = config.with_seed(2)
        assert other.seed == 2
        assert other.pattern_count == config.pattern_count
        assert config.seed == 1  # original untouched

    def test_describe_mentions_key_fields(self):
        text = PTestConfig(pattern_count=5, op="cyclic", seed=9).describe()
        assert "n=5" in text and "op=cyclic" in text and "seed=9" in text


class TestStressConfigVariants:
    def test_smaller_memory_crashes_faster(self):
        small = stress_case1(seed=0, memory_bytes=16 * 1024).run()
        large = stress_case1(seed=0, memory_bytes=48 * 1024).run()
        assert small.found_bug and large.found_bug
        assert (
            small.report.primary.detected_at
            < large.report.primary.detected_at
        )

    def test_service_mix_reflects_paper_distribution(self):
        result = stress_case1(seed=0, max_ticks=5_000, buggy_gc=False).run()
        counts = result.service_counts
        # TCH dominates (0.6 out of TC and 0.6 self-loop in Fig. 5).
        assert counts.get("TCH", 0) > counts.get("TS", 0)
        assert counts.get("TC", 0) >= 16
