"""Tests for the simulated clock, event scheduler and shared memory."""

from __future__ import annotations

import pytest

from repro.errors import MemoryError_, SimulationError
from repro.sim.events import EventScheduler, SimClock
from repro.sim.memory import OMAP5912_SRAM_BYTES, SharedMemory


class TestClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0
        clock.advance(5)
        assert clock.now == 5

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1)


class TestEventScheduler:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired: list[str] = []
        scheduler.schedule_at(3, lambda: fired.append("late"))
        scheduler.schedule_at(1, lambda: fired.append("early"))
        scheduler.tick(5)
        assert fired == ["early", "late"]

    def test_ties_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        fired: list[int] = []
        for index in range(5):
            scheduler.schedule_at(2, lambda i=index: fired.append(i))
        scheduler.tick(2)
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(1, lambda: fired.append("x"))
        event.cancel()
        scheduler.tick(3)
        assert fired == []
        assert scheduler.pending() == 0

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.tick(5)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(2, lambda: None)

    def test_schedule_after(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.tick(4)
        scheduler.schedule_after(3, lambda: fired.append(scheduler.clock.now))
        scheduler.tick(5)
        assert fired == [7]

    def test_callbacks_may_schedule_more(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.clock.now)
            if len(fired) < 3:
                scheduler.schedule_after(2, chain)

        scheduler.schedule_at(1, chain)
        scheduler.tick(10)
        assert fired == [1, 3, 5]

    def test_run_until_idle_jumps(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(100, lambda: fired.append("a"))
        scheduler.schedule_at(500, lambda: fired.append("b"))
        elapsed = scheduler.run_until_idle()
        assert fired == ["a", "b"]
        assert elapsed == 500

    def test_run_until_idle_detects_rearming_loop(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule_after(10, rearm)

        scheduler.schedule_at(1, rearm)
        with pytest.raises(SimulationError):
            scheduler.run_until_idle(max_ticks=100)

    def test_next_due_skips_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.schedule_at(1, lambda: None)
        scheduler.schedule_at(7, lambda: None)
        first.cancel()
        assert scheduler.next_due() == 7


class TestSharedMemory:
    def test_default_is_omap_sram_size(self):
        assert SharedMemory().size == OMAP5912_SRAM_BYTES == 250 * 1024

    def test_u8_roundtrip(self):
        memory = SharedMemory(size=64)
        memory.write_u8(3, 0xAB)
        assert memory.read_u8(3) == 0xAB

    def test_u16_little_endian(self):
        memory = SharedMemory(size=64)
        memory.write_u16(4, 0x1234)
        assert memory.read_u8(4) == 0x34
        assert memory.read_u8(5) == 0x12
        assert memory.read_u16(4) == 0x1234

    def test_u32_roundtrip(self):
        memory = SharedMemory(size=64)
        memory.write_u32(8, 0xDEADBEEF)
        assert memory.read_u32(8) == 0xDEADBEEF

    def test_out_of_range_rejected(self):
        memory = SharedMemory(size=16)
        with pytest.raises(MemoryError_):
            memory.read_u8(16)
        with pytest.raises(MemoryError_):
            memory.write_u32(14, 1)
        with pytest.raises(MemoryError_):
            memory.read_u8(-1)

    def test_misaligned_rejected(self):
        memory = SharedMemory(size=64)
        with pytest.raises(MemoryError_):
            memory.read_u16(3)
        with pytest.raises(MemoryError_):
            memory.write_u32(2, 1)

    def test_value_range_checked(self):
        memory = SharedMemory(size=64)
        with pytest.raises(MemoryError_):
            memory.write_u8(0, 256)
        with pytest.raises(MemoryError_):
            memory.write_u16(0, 2**16)

    def test_block_roundtrip(self):
        memory = SharedMemory(size=64)
        memory.write_block(10, b"hello")
        assert memory.read_block(10, 5) == b"hello"

    def test_block_overrun_rejected(self):
        memory = SharedMemory(size=16)
        with pytest.raises(MemoryError_):
            memory.write_block(12, b"toolong")
        with pytest.raises(MemoryError_):
            memory.read_block(12, 10)

    def test_watchpoint_fires_on_write(self):
        memory = SharedMemory(size=64)
        hits = []
        memory.watch(6, lambda addr, old, new: hits.append((addr, old, new)))
        memory.write_u16(6, 7)
        memory.write_u16(6, 9)
        assert hits == [(6, 0, 7), (6, 7, 9)]

    def test_unwatch_stops_callbacks(self):
        memory = SharedMemory(size=64)
        hits = []
        memory.watch(6, lambda *args: hits.append(args))
        memory.unwatch(6)
        memory.write_u16(6, 7)
        assert hits == []

    def test_counters(self):
        memory = SharedMemory(size=64)
        memory.write_u8(0, 1)
        memory.read_u8(0)
        memory.read_u16(0)
        assert memory.writes == 1
        assert memory.reads == 2

    def test_clear_resets_contents(self):
        memory = SharedMemory(size=64)
        memory.write_u32(0, 0xFFFFFFFF)
        memory.clear()
        assert memory.read_u32(0) == 0
