"""Tests for the bug detector and Definition 2 state recording."""

from __future__ import annotations

import pytest

from repro.bridge.bridge import build_bridge
from repro.errors import DetectorError
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.programs import Acquire, Compute, Exit, YieldCpu
from repro.pcore.services import ServiceCode, ServiceRequest
from repro.pcore.tcb import TaskState
from repro.ptest.detector import AnomalyKind, BugDetector, DetectorConfig
from repro.ptest.patterns import TestPattern
from repro.ptest.recording import ProcessStateRecorder, StateRecord
from repro.sim.mailbox import MailboxBank

from repro.pcore.testkit import create_task, run_service


def make_detector(kernel=None, **config_kwargs):
    kernel = kernel or PCoreKernel(config=KernelConfig())
    bank = MailboxBank.omap5912()
    bridge_master, _slave = build_bridge(bank, kernel)
    detector = BugDetector(
        kernel=kernel,
        bridge=bridge_master,
        config=DetectorConfig(**config_kwargs),
    )
    return kernel, bridge_master, detector


class TestCrashMonitor:
    def test_panic_reported_once(self):
        kernel, _bridge, detector = make_detector()
        kernel.panic("boom")
        first = detector.sweep(10)
        second = detector.sweep(20)
        assert [a.kind for a in first] == [AnomalyKind.CRASH]
        assert second == []
        assert "boom" in detector.first(AnomalyKind.CRASH).description

    def test_healthy_kernel_silent(self):
        _kernel, _bridge, detector = make_detector()
        assert detector.sweep(10) == []
        assert not detector.triggered


class TestDeadlockMonitor:
    def _block_cycle(self, kernel):
        """Manufacture a 2-cycle: t1 owns a waits b; t2 owns b waits a."""

        def grab(first, second):
            def program(ctx):
                yield Acquire(first)
                yield Compute(30)
                yield Acquire(second)
                yield Exit(0)

            return program

        kernel.register_program("g1", grab("ra", "rb"))
        kernel.register_program("g2", grab("rb", "ra"))
        t1 = create_task(kernel, priority=1, program="g1").value
        t2 = create_task(kernel, priority=2, program="g2").value
        tick = 0
        for tick in range(3):
            kernel.step(tick)
        run_service(kernel, ServiceCode.TS, target=t2)  # t2 holds rb
        for tick in range(3, 40):
            kernel.step(tick)  # t1 acquires ra, then blocks on rb
        run_service(kernel, ServiceCode.TR, target=t2)
        for tick in range(40, 80):
            kernel.step(tick)  # t2 blocks on ra -> cycle
        return t1, t2

    def test_cycle_detected_after_confirmation(self):
        kernel, _bridge, detector = make_detector(deadlock_confirmations=2)
        t1, t2 = self._block_cycle(kernel)
        assert kernel.tasks[t1].state is TaskState.BLOCKED
        assert kernel.tasks[t2].state is TaskState.BLOCKED
        assert detector.sweep(100) == []  # first sighting: debounce
        found = detector.sweep(110)
        assert [a.kind for a in found] == [AnomalyKind.DEADLOCK]
        anomaly = found[0]
        assert set(anomaly.tids) == {t1, t2}
        assert set(anomaly.resources) == {"ra", "rb"}

    def test_transient_contention_not_reported(self):
        kernel, _bridge, detector = make_detector(deadlock_confirmations=2)

        def quick_lock(ctx):
            yield Acquire("m")
            yield Compute(2)
            yield Exit(0)  # exit releases via forfeit

        kernel.register_program("ql", quick_lock)
        create_task(kernel, priority=1, program="ql")
        create_task(kernel, priority=2, program="ql")
        for tick in range(30):
            kernel.step(tick)
            detector.sweep(tick)
        assert detector.first(AnomalyKind.DEADLOCK) is None


class TestStarvationMonitor:
    def test_ready_task_starving_is_reported(self):
        kernel, _bridge, detector = make_detector(progress_window=50)

        def hog(ctx):
            while True:
                yield Compute(10)

        kernel.register_program("hog", hog)
        create_task(kernel, priority=9, program="hog")
        starved = create_task(kernel, priority=1).value
        for tick in range(100):
            kernel.step(tick)
        found = detector.sweep(100)
        kinds = {a.kind for a in found}
        assert AnomalyKind.STARVATION in kinds
        starvation = detector.first(AnomalyKind.STARVATION)
        assert starved in starvation.tids

    def test_suspended_tasks_are_exempt(self):
        kernel, _bridge, detector = make_detector(progress_window=10)
        tid = create_task(kernel, priority=1).value
        run_service(kernel, ServiceCode.TS, target=tid)
        for tick in range(50):
            kernel.step(tick)
        assert detector.sweep(50) == []

    def test_progressing_tasks_not_reported(self):
        kernel, _bridge, detector = make_detector(progress_window=20)
        create_task(kernel, priority=1)  # idle program progresses
        for tick in range(15):
            kernel.step(tick)
            assert detector.sweep(tick) == []

    def test_each_task_reported_once(self):
        kernel, _bridge, detector = make_detector(progress_window=10)

        def hog(ctx):
            while True:
                yield Compute(10)

        kernel.register_program("hog", hog)
        create_task(kernel, priority=9, program="hog")
        create_task(kernel, priority=1)
        for tick in range(60):
            kernel.step(tick)
        first = detector.sweep(59)
        for tick in range(60, 70):
            kernel.step(tick)
        second = detector.sweep(69)
        assert len(first) == 1
        assert second == []


class TestHangMonitor:
    def test_unanswered_command_reported(self):
        kernel, bridge, detector = make_detector(reply_timeout=30)
        kernel.panic("silent death")
        detector._reported.add(("crash",))  # isolate the hang monitor
        bridge.now = 0
        bridge.issue(ServiceRequest(service=ServiceCode.TC, priority=1))
        bridge.now = 100
        found = detector.sweep(100)
        assert [a.kind for a in found] == [AnomalyKind.HANG]

    def test_answered_commands_do_not_hang(self):
        kernel, bridge, detector = make_detector(reply_timeout=30)
        bank = MailboxBank.omap5912()
        from repro.bridge.bridge import build_bridge as bb

        # use a fresh wired pair so replies actually flow
        kernel2 = PCoreKernel(config=KernelConfig())
        master, slave = bb(bank, kernel2)
        detector2 = BugDetector(
            kernel=kernel2, bridge=master, config=DetectorConfig(reply_timeout=30)
        )
        master.now = 0
        master.issue(ServiceRequest(service=ServiceCode.TC, priority=1))
        for tick in range(5):
            slave.step(tick)
        master.pump()
        master.now = 200
        assert detector2.sweep(200) == []


class TestStateRecording:
    def test_record_five_tuple(self):
        recorder = ProcessStateRecorder()
        pattern = TestPattern(pattern_id=1, symbols=("TC", "TS", "TR"))
        recorder.register_pair(pattern)
        recorder.note_issue(1, "m1.1")
        recorder.note_issue(1, "m1.2")
        recorder.note_slave_state(1, TaskState.SUSPENDED, tid=4)
        record = recorder.record(1)
        assert record == StateRecord(
            pair_id=1,
            master_state="m1.2",
            slave_state="suspended",
            pattern=("TC", "TS", "TR"),
            sequence_number=2,
            remaining=("TR",),
        )

    def test_describe_matches_fig4_notation(self):
        record = StateRecord(
            pair_id=1,
            master_state="m2",
            slave_state="s1",
            pattern=("p1", "p2", "p3"),
            sequence_number=2,
            remaining=("p3",),
        )
        assert record.describe() == "CP1 = (m2, s1, p1->p2->p3, 2, p3)"

    def test_duplicate_pair_rejected(self):
        recorder = ProcessStateRecorder()
        pattern = TestPattern(pattern_id=0, symbols=("TC",))
        recorder.register_pair(pattern)
        with pytest.raises(DetectorError):
            recorder.register_pair(pattern)

    def test_unknown_pair_rejected(self):
        recorder = ProcessStateRecorder()
        with pytest.raises(DetectorError):
            recorder.record(3)

    def test_snapshot_ordering(self):
        recorder = ProcessStateRecorder()
        for pair_id in (2, 0, 1):
            recorder.register_pair(
                TestPattern(pattern_id=pair_id, symbols=("TC",))
            )
        snapshot = recorder.snapshot()
        assert [record.pair_id for record in snapshot] == [0, 1, 2]

    def test_slave_tid_tracked(self):
        recorder = ProcessStateRecorder()
        recorder.register_pair(TestPattern(pattern_id=0, symbols=("TC",)))
        recorder.note_slave_state(0, TaskState.READY, tid=7)
        assert recorder.slave_tid(0) == 7
