"""Tests for the HMM module and the PFA embedding."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.automata.hmm import HMM, hmm_from_pfa
from repro.errors import DistributionError
from repro.ptest.pcore_model import pcore_pfa


def coin_hmm() -> HMM:
    """Two hidden coins: fair and biased, sticky transitions."""
    return HMM(
        transition=np.array([[0.9, 0.1], [0.2, 0.8]]),
        emission=np.array([[0.5, 0.5], [0.9, 0.1]]),
        initial=np.array([1.0, 0.0]),
        symbols=("H", "T"),
    )


class TestHMMBasics:
    def test_row_validation(self):
        with pytest.raises(DistributionError):
            HMM(
                transition=np.array([[0.5, 0.4], [0.5, 0.5]]),  # bad row
                emission=np.array([[1.0], [1.0]]),
                initial=np.array([1.0, 0.0]),
                symbols=("x",),
            )

    def test_forward_empty_sequence(self):
        assert coin_hmm().forward([]) == 1.0

    def test_forward_single_symbol(self):
        # Starts in the fair coin: P(H) = 0.5.
        assert coin_hmm().forward(["H"]) == pytest.approx(0.5)

    def test_forward_total_probability_over_length_n(self):
        hmm = coin_hmm()
        for length in (1, 2, 3):
            total = 0.0
            from itertools import product

            for word in product("HT", repeat=length):
                total += hmm.forward(list(word))
            assert total == pytest.approx(1.0)

    def test_log_forward_matches_forward(self):
        hmm = coin_hmm()
        word = ["H", "T", "H", "H", "T"]
        assert hmm.log_forward(word) == pytest.approx(
            math.log(hmm.forward(word))
        )

    def test_unknown_symbol_rejected(self):
        with pytest.raises(DistributionError):
            coin_hmm().forward(["X"])

    def test_viterbi_prefers_biased_coin_for_head_runs(self):
        path, log_prob = coin_hmm().viterbi(["H"] * 10)
        assert log_prob < 0
        # A long head run is best explained by switching to the biased coin.
        assert path[-1] == 1

    def test_viterbi_empty(self):
        assert coin_hmm().viterbi([]) == ([], 0.0)

    def test_sampling_is_seeded(self):
        hmm = coin_hmm()
        assert hmm.sample(20, seed=4) == hmm.sample(20, seed=4)

    def test_sample_statistics_roughly_match(self):
        hmm = coin_hmm()
        draws = [hmm.sample(1, seed=seed)[0] for seed in range(2000)]
        heads = draws.count("H") / len(draws)
        assert heads == pytest.approx(0.5, abs=0.05)  # starts in fair coin


class TestPFAEmbedding:
    def test_embedding_shapes(self):
        hmm = hmm_from_pfa(pcore_pfa())
        # 14 arcs + 1 sink state.
        assert hmm.num_states == 15
        assert "$" in hmm.symbols

    def test_likelihood_matches_pfa_walk_probability(self):
        pfa = pcore_pfa()
        hmm = hmm_from_pfa(pfa)
        for word in (
            ["TC", "TD"],
            ["TC", "TY"],
            ["TC", "TCH", "TCH", "TD"],
            ["TC", "TS", "TR", "TY"],
        ):
            assert hmm.forward(word) == pytest.approx(
                pfa.walk_probability(tuple(word))
            )

    def test_illegal_words_have_zero_likelihood(self):
        hmm = hmm_from_pfa(pcore_pfa())
        assert hmm.forward(["TD"]) == pytest.approx(0.0)
        assert hmm.forward(["TC", "TR"]) == pytest.approx(0.0)

    def test_viterbi_decodes_lifecycle_position(self):
        """Viterbi over the embedded HMM identifies which PFA arc each
        observed service came from — a trace-diagnosis use case."""
        pfa = pcore_pfa()
        hmm = hmm_from_pfa(pfa)
        path, log_prob = hmm.viterbi(["TC", "TS", "TR", "TD"])
        assert len(path) == 4
        assert math.isfinite(log_prob)
        # The first decoded state must be an arc emitting TC.
        assert hmm.emission[path[0]].argmax() == hmm.symbols.index("TC")

    def test_sampled_sequences_walk_the_pfa(self):
        pfa = pcore_pfa()
        hmm = hmm_from_pfa(pfa)
        for seed in range(20):
            word = hmm.sample(6, seed=seed)
            trimmed = []
            for symbol in word:
                if symbol == "$":
                    break
                trimmed.append(symbol)
            assert pfa.walk_probability(tuple(trimmed)) > 0.0
