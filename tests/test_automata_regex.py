"""Tests for the regex tokenizer, parser and AST."""

from __future__ import annotations

import pytest

from repro.automata.regex_ast import (
    Concat,
    Empty,
    Epsilon,
    Literal,
    Optional_,
    Plus,
    Star,
    Union,
    concat_all,
    union_all,
)
from repro.automata.regex_parser import parse_regex, tokenize
from repro.errors import RegexSyntaxError


class TestTokenize:
    def test_single_symbol(self):
        tokens = tokenize("TC")
        assert [(t.kind, t.text) for t in tokens] == [("symbol", "TC")]

    def test_whitespace_separates_symbols(self):
        tokens = tokenize("TC TS TR")
        assert [t.text for t in tokens] == ["TC", "TS", "TR"]

    def test_operators_split_symbols(self):
        tokens = tokenize("a(b|c)*d")
        assert [t.text for t in tokens] == ["a", "(", "b", "|", "c", ")", "*", "d"]

    def test_juxtaposed_symbols_stay_joined_without_alphabet(self):
        tokens = tokenize("TSTR")
        assert [t.text for t in tokens] == ["TSTR"]

    def test_alphabet_splits_juxtaposed_symbols(self):
        tokens = tokenize("TSTR", alphabet={"TS", "TR"})
        assert [t.text for t in tokens] == ["TS", "TR"]

    def test_alphabet_prefers_longest_match(self):
        # TCH must win over TC followed by a dangling H.
        tokens = tokenize("TCH", alphabet={"TC", "TCH"})
        assert [t.text for t in tokens] == ["TCH"]

    def test_paper_re2_with_alphabet(self):
        text = "TC((TCH)* | TSTR(TCH)*)*(TD$ | TY$)"
        alphabet = {"TC", "TD", "TS", "TR", "TCH", "TY"}
        symbols = [
            t.text
            for t in tokenize(text, alphabet=alphabet)
            if t.kind == "symbol"
        ]
        assert symbols == ["TC", "TCH", "TS", "TR", "TCH", "TD", "TY"]

    def test_unknown_prefix_with_alphabet_raises(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("TSXX", alphabet={"TS", "TR"})

    def test_unexpected_character_raises(self):
        with pytest.raises(RegexSyntaxError) as info:
            tokenize("a & b")
        assert info.value.position == 2

    def test_dollar_is_an_operator(self):
        tokens = tokenize("TD$")
        assert [t.text for t in tokens] == ["TD", "$"]

    def test_empty_alphabet_rejected(self):
        with pytest.raises(RegexSyntaxError):
            tokenize("a", alphabet=set())


class TestParse:
    def test_single_literal(self):
        assert parse_regex("a") == Literal("a")

    def test_concatenation(self):
        assert parse_regex("a b") == Concat(Literal("a"), Literal("b"))

    def test_union_precedence_below_concat(self):
        node = parse_regex("a b | c")
        assert isinstance(node, Union)
        assert node.left == Concat(Literal("a"), Literal("b"))
        assert node.right == Literal("c")

    def test_star_binds_tightest(self):
        node = parse_regex("a b*")
        assert node == Concat(Literal("a"), Star(Literal("b")))

    def test_plus_and_optional(self):
        assert parse_regex("a+") == Plus(Literal("a"))
        assert parse_regex("a?") == Optional_(Literal("a"))

    def test_grouping(self):
        node = parse_regex("(a b)*")
        assert node == Star(Concat(Literal("a"), Literal("b")))

    def test_stacked_postfix(self):
        node = parse_regex("a*?")
        assert node == Optional_(Star(Literal("a")))

    def test_dollar_at_branch_end_is_epsilon_marker(self):
        node = parse_regex("TD$ | TY$")
        assert isinstance(node, Union)
        assert node.left == Literal("TD")
        assert node.right == Literal("TY")

    def test_dollar_mid_branch_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a$ b")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("(a b")

    def test_trailing_close_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a)")

    def test_empty_branch_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a |")

    def test_empty_input_is_epsilon(self):
        assert parse_regex("") == Epsilon()

    def test_paper_re2_symbols(self):
        node = parse_regex("TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)")
        assert node.symbols() == {"TC", "TCH", "TS", "TR", "TD", "TY"}

    def test_lone_dollar_is_epsilon(self):
        node = parse_regex("a | $")
        assert isinstance(node, Union)
        assert node.right == Epsilon()


class TestAst:
    def test_nullable_epsilon_and_star(self):
        assert Epsilon().nullable()
        assert Star(Literal("a")).nullable()
        assert Optional_(Literal("a")).nullable()
        assert not Literal("a").nullable()
        assert not Plus(Literal("a")).nullable()
        assert not Empty().nullable()

    def test_nullable_compound(self):
        assert not Concat(Star(Literal("a")), Literal("b")).nullable()
        assert Concat(Star(Literal("a")), Optional_(Literal("b"))).nullable()
        assert Union(Literal("a"), Epsilon()).nullable()

    def test_literal_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Literal("")

    def test_to_string_roundtrips_through_parser(self):
        source = "TC ((TCH)* | TS TR (TCH)*)* (TD | TY)"
        node = parse_regex(source)
        assert parse_regex(node.to_string()) == node

    def test_concat_all_and_union_all(self):
        assert concat_all([]) == Epsilon()
        assert union_all([]) == Empty()
        letters = [Literal(ch) for ch in "abc"]
        assert concat_all(letters) == Concat(
            Literal("a"), Concat(Literal("b"), Literal("c"))
        )
        assert union_all(letters) == Union(
            Literal("a"), Union(Literal("b"), Literal("c"))
        )

    def test_symbols_collects_all(self):
        node = parse_regex("a (b | c)* d")
        assert node.symbols() == {"a", "b", "c", "d"}
