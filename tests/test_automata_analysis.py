"""Tests for Markov analysis of PFAs."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.automata.analysis import (
    absorbing_states,
    expected_pattern_length,
    mean_entropy,
    reachable_states,
    stationary_distribution,
    string_probability,
    transition_entropy,
    transition_matrix,
)
from repro.automata.pfa import pfa_from_regex
from repro.ptest.pcore_model import pcore_pfa


class TestStructure:
    def test_reachable_states_fig3(self, fig3_pfa):
        assert reachable_states(fig3_pfa) == {0, 1, 2}

    def test_absorbing_states_fig3(self, fig3_pfa):
        assert absorbing_states(fig3_pfa) == {2}

    def test_transition_matrix_rows_sum_to_one(self, fig3_pfa):
        matrix = transition_matrix(fig3_pfa)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_absorbing_selfloop_embedding(self, fig3_pfa):
        matrix = transition_matrix(fig3_pfa)
        assert matrix[2, 2] == pytest.approx(1.0)


class TestExpectedLength:
    def test_fig3_expected_length_analytic(self, fig3_pfa):
        # E[len] = P(b)*1 + P(a)*(1 + E[steps from q1]).
        # From q1: expected visits to c then d: 1/(1-0.3) steps.
        expected_q1 = 1.0 / 0.7
        expected = 0.4 * 1 + 0.6 * (1 + expected_q1)
        assert expected_pattern_length(fig3_pfa) == pytest.approx(expected)

    def test_pcore_expected_length_finite_positive(self):
        value = expected_pattern_length(pcore_pfa())
        assert 2.0 < value < 50.0

    def test_nonterminating_chain_reports_inf(self):
        # a+ with no epsilon out: a* loops... build a pure loop via regex
        # 'a' repeated forever is impossible; craft with a self-loop only.
        from repro.automata.pfa import PFA, Transition

        pfa = PFA(
            num_states=1,
            alphabet=frozenset("a"),
            transitions={
                0: {"a": Transition(source=0, symbol="a", target=0, probability=1.0)}
            },
            start=0,
            accepts=frozenset(),
        )
        assert math.isinf(expected_pattern_length(pfa))


class TestStationary:
    def test_absorbing_mass_concentrates(self, fig3_pfa):
        pi = stationary_distribution(fig3_pfa)
        assert pi[2] == pytest.approx(1.0, abs=1e-8)

    def test_pure_cycle_uniform(self):
        from repro.automata.pfa import PFA, Transition

        pfa = PFA(
            num_states=2,
            alphabet=frozenset("ab"),
            transitions={
                0: {"a": Transition(source=0, symbol="a", target=1, probability=1.0)},
                1: {"b": Transition(source=1, symbol="b", target=0, probability=1.0)},
            },
            start=0,
            accepts=frozenset(),
        )
        pi = stationary_distribution(pfa)
        assert pi == pytest.approx(np.array([0.5, 0.5]))


class TestEntropy:
    def test_deterministic_state_has_zero_entropy(self, fig3_pfa):
        assert transition_entropy(fig3_pfa, 2) == 0.0

    def test_binary_choice_entropy(self, fig3_pfa):
        expected = -(0.6 * math.log2(0.6) + 0.4 * math.log2(0.4))
        assert transition_entropy(fig3_pfa, 0) == pytest.approx(expected)

    def test_uniform_pcore_has_higher_mean_entropy_than_paper(self):
        from repro.ptest.pcore_model import uniform_pcore_pfa

        assert mean_entropy(uniform_pcore_pfa()) > mean_entropy(pcore_pfa())

    def test_single_arc_state_zero(self):
        pfa = pfa_from_regex("a b")
        assert transition_entropy(pfa, pfa.start) == 0.0


class TestStringProbability:
    def test_matches_word_probability(self, fig3_pfa):
        assert string_probability(fig3_pfa, ["a", "d"]) == pytest.approx(0.42)
        assert string_probability(fig3_pfa, ["a"]) == 0.0
