"""CLI coverage for the fault-tolerance surface.

Exit code 3 ("executor failure") with a one-line diagnosis, the
quarantine summary on successful runs, and the checkpoint/resume flow
of ``repro adapt``.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cli import main
from repro.errors import WatchdogTimeout
from repro.ptest import adaptive as adaptive_module
from repro.ptest import campaign as campaign_module
from repro.ptest.pool import shutdown_pools


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    shutdown_pools()
    yield
    shutdown_pools()


class TestExecutorFailureExitCode:
    def test_campaign_broken_pool_exits_3(self, capsys, monkeypatch):
        def _boom(self, sink=None):
            raise BrokenProcessPool("worker died mid-campaign")

        monkeypatch.setattr(campaign_module.Campaign, "run", _boom)
        assert main(["campaign", "philosophers", "--workers", "2"]) == 3
        out = capsys.readouterr().out
        assert "executor failure: BrokenProcessPool" in out
        assert "--quarantine" in out  # actionable hint when it was off

    def test_campaign_watchdog_timeout_exits_3_not_2(self, capsys, monkeypatch):
        # WatchdogTimeout subclasses ReproError; it must hit the
        # executor-failure arm (exit 3), not the config-error arm.
        def _hang(self, sink=None):
            raise WatchdogTimeout("batch exceeded 0.5s/cell")

        monkeypatch.setattr(campaign_module.Campaign, "run", _hang)
        assert main(["campaign", "philosophers", "--cell-timeout", "0.5"]) == 3
        assert "executor failure: WatchdogTimeout" in capsys.readouterr().out

    def test_hint_suppressed_when_quarantine_already_on(self, capsys, monkeypatch):
        def _boom(self, sink=None):
            raise BrokenProcessPool("boom")

        monkeypatch.setattr(campaign_module.Campaign, "run", _boom)
        assert main(["campaign", "philosophers", "--quarantine"]) == 3
        assert "--quarantine to bisect" not in capsys.readouterr().out

    def test_adapt_broken_pool_exits_3(self, capsys, monkeypatch):
        def _boom(self, sink=None):
            raise BrokenProcessPool("worker died in round 2")

        monkeypatch.setattr(adaptive_module.AdaptiveCampaign, "run", _boom)
        assert main(["adapt", "philosophers", "--workers", "2"]) == 3
        out = capsys.readouterr().out
        assert "executor failure: BrokenProcessPool: worker died" in out


class TestQuarantineSummaryOutput:
    def test_campaign_prints_explicit_zero_quarantine(self, capsys):
        code = main(
            [
                "campaign",
                "philosophers",
                "--seeds",
                "3",
                "--quarantine",
                "--cell-timeout",
                "60",
            ]
        )
        assert code in (0, 1)  # bug-found exit is fine; crash exits are not
        out = capsys.readouterr().out
        assert "quarantine: 0 of" in out

    def test_flags_parse_without_workers(self, capsys):
        # Serial path: the knobs are accepted (quarantine isolates
        # raising cells; the watchdog is documented inert).
        assert (
            main(
                [
                    "campaign",
                    "clean_spin",
                    "--seeds",
                    "2",
                    "--quarantine",
                ]
            )
            == 0
        )
        assert "quarantine: 0 of 2 cells" in capsys.readouterr().out


class TestAdaptCheckpointFlow:
    def test_resume_without_checkpoint_is_config_error(self, capsys):
        assert main(["adapt", "philosophers", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().out

    def test_checkpoint_then_resume_reports_replayed_rounds(self, capsys, tmp_path):
        path = str(tmp_path / "adapt.ckpt")
        base = [
            "adapt",
            "philosophers",
            "--seeds",
            "3",
            "--rounds",
            "2",
            "--policy",
            "repeat",
            "--checkpoint",
            path,
        ]
        first_code = main(base)
        first_out = capsys.readouterr().out
        resumed_code = main(base + ["--resume"])
        resumed_out = capsys.readouterr().out
        assert resumed_code == first_code
        assert "[resumed 2 round(s) from checkpoint]" in resumed_out
        # Replay is bit-identical: every round table line of the first
        # run reappears verbatim in the resumed run's output.
        for line in first_out.splitlines():
            if line.strip().startswith("round"):
                assert line in resumed_out
