"""Tests for baselines, the fault catalogue and the analysis package."""

from __future__ import annotations

import pytest

from repro.analysis.coverage import (
    pattern_transition_coverage,
    service_pair_coverage,
)
from repro.analysis.metrics import (
    detection_sweep,
    duplication_rate,
    expected_distinct_patterns,
    unique_pattern_fraction,
)
from repro.analysis.profiling import (
    learn_distribution_from_patterns,
    traces_from_result,
)
from repro.baselines.random_tester import RandomTester, uniform_noise_pfa
from repro.baselines.systematic import (
    SystematicExplorer,
    interleavings,
    order_to_merged,
)
from repro.faults import FAULT_CATALOGUE, build_fault_scenario, fault_names
from repro.ptest.config import PTestConfig
from repro.ptest.detector import AnomalyKind
from repro.ptest.generator import PatternGenerator
from repro.ptest.patterns import TestPattern
from repro.ptest.pcore_model import PCORE_SERVICES, pcore_pfa
from repro.workloads.scenarios import lifecycle_pfa, philosophers_case2


class TestUniformNoisePFA:
    def test_single_state_uniform(self):
        pfa = uniform_noise_pfa(PCORE_SERVICES)
        assert pfa.num_states == 1
        row = pfa.outgoing(0)
        assert len(row) == 6
        for transition in row:
            assert transition.probability == pytest.approx(1.0 / 6.0)

    def test_never_absorbing(self):
        pfa = uniform_noise_pfa(["a", "b"])
        assert not pfa.is_absorbing(0)

    def test_random_tester_mostly_hits_error_paths(self):
        """Structureless noise wastes most commands on illegal requests —
        the structural argument for the adaptive approach."""
        config = PTestConfig(
            pattern_count=4, pattern_size=8, seed=5, max_ticks=8000
        )
        result = RandomTester(config=config).run()
        assert result.commands_issued > 0
        assert result.commands_failed > result.commands_issued * 0.3


class TestSystematic:
    def _patterns(self):
        return [
            TestPattern(pattern_id=0, symbols=("A1", "A2")),
            TestPattern(pattern_id=1, symbols=("B1", "B2")),
        ]

    def test_interleaving_count_unbounded(self):
        # C(4,2) = 6 interleavings of two length-2 sequences.
        assert len(list(interleavings(self._patterns()))) == 6

    def test_switch_bound_prunes(self):
        bounded = list(interleavings(self._patterns(), switch_bound=1))
        assert [order for order in bounded] == [[0, 0, 1, 1], [1, 1, 0, 0]]

    def test_limit_truncates(self):
        assert len(list(interleavings(self._patterns(), limit=3))) == 3

    def test_orders_are_valid_interleavings(self):
        patterns = self._patterns()
        for order in interleavings(patterns):
            merged = order_to_merged(patterns, order)
            assert len(merged) == 4  # validate() ran inside

    def test_explorer_finds_philosophers_deadlock(self):
        scenario = philosophers_case2(seed=0)
        generator = PatternGenerator.from_pfa(
            lifecycle_pfa(("TC", "TS", "TR")), seed=0
        )
        patterns = generator.generate_batch(3, 3)
        explorer = SystematicExplorer(
            config=scenario.config,
            patterns=patterns,
            programs=dict(scenario.programs),
            switch_bound=4,
            max_runs=30,
        )
        result = explorer.explore()
        assert result.found_bug
        assert result.found.report.primary.kind is AnomalyKind.DEADLOCK

    def test_explorer_truncates_on_budget(self):
        scenario = philosophers_case2(seed=0, ordered=True)
        generator = PatternGenerator.from_pfa(
            lifecycle_pfa(("TC", "TS", "TR")), seed=0
        )
        patterns = generator.generate_batch(3, 3)
        explorer = SystematicExplorer(
            config=scenario.config,
            patterns=patterns,
            programs=dict(scenario.programs),
            max_runs=2,
        )
        result = explorer.explore()
        assert not result.found_bug
        assert result.truncated
        assert result.executed == 2


class TestFaultCatalogue:
    def test_catalogue_names_unique(self):
        names = fault_names()
        assert len(names) == len(set(names))
        assert "gc_leak" in names and "none" in names

    def test_unknown_fault_rejected(self):
        with pytest.raises(Exception):
            build_fault_scenario("not_a_fault")

    @pytest.mark.parametrize(
        "spec", FAULT_CATALOGUE, ids=[s.name for s in FAULT_CATALOGUE]
    )
    def test_each_fault_detected_as_expected(self, spec):
        result = spec.build(0).run()
        if spec.expected is None:
            assert not result.found_bug
        else:
            assert result.found_bug, spec.name
            assert result.report.primary.kind is spec.expected


class TestCoverage:
    def test_full_coverage_of_tiny_pfa(self):
        pfa = lifecycle_pfa(("TC", "TS", "TR"))
        report = pattern_transition_coverage(pfa, [("TC", "TS", "TR")])
        assert report.fraction == 1.0
        assert report.missing == frozenset()

    def test_partial_coverage(self):
        pfa = pcore_pfa()
        report = pattern_transition_coverage(pfa, [("TC", "TD")])
        assert 0.0 < report.fraction < 1.0
        assert (0, "TC") in report.covered

    def test_coverage_grows_with_patterns(self):
        pfa = pcore_pfa()
        generator = PatternGenerator.from_pfa(pfa, seed=0)
        small = pattern_transition_coverage(
            pfa, [p.symbols for p in generator.generate_batch(2, 6)]
        )
        generator2 = PatternGenerator.from_pfa(pfa, seed=0)
        large = pattern_transition_coverage(
            pfa, [p.symbols for p in generator2.generate_batch(50, 6)]
        )
        assert large.fraction >= small.fraction

    def test_service_pair_coverage(self):
        pfa = pcore_pfa()
        report = service_pair_coverage(pfa, [("TC", "TCH", "TD")])
        assert ("TC", "TCH") in report.covered
        assert ("TCH", "TD") in report.covered
        assert report.fraction < 1.0

    def test_off_language_patterns_contribute_prefix_only(self):
        pfa = lifecycle_pfa(("TC", "TS"))
        report = pattern_transition_coverage(pfa, [("TC", "XX")])
        assert (0, "TC") in report.covered
        assert report.fraction == 0.5


class TestMetrics:
    def test_duplication_rate(self):
        patterns = [("a",), ("a",), ("b",), ("a",)]
        assert duplication_rate(patterns) == pytest.approx(0.5)
        assert unique_pattern_fraction(patterns) == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert duplication_rate([]) == 0.0
        assert unique_pattern_fraction([]) == 1.0

    def test_expected_distinct_patterns_analytic(self):
        # Two equally likely outcomes, many draws: expect ~2 distinct.
        value = expected_distinct_patterns([0.5, 0.5], draws=100)
        assert value == pytest.approx(2.0, abs=1e-6)
        assert expected_distinct_patterns([0.5, 0.5], draws=1) == pytest.approx(1.0)

    def test_detection_sweep_on_philosophers(self):
        stats = detection_sweep(
            lambda seed: philosophers_case2(seed=seed),
            seeds=range(3),
            expected=AnomalyKind.DEADLOCK,
        )
        assert stats.runs == 3
        assert stats.rate == 1.0
        assert stats.precision == 1.0
        assert stats.mean_ticks_to_detection > 0

    def test_detection_sweep_control_counts_false_positives(self):
        stats = detection_sweep(
            lambda seed: philosophers_case2(seed=seed, ordered=True),
            seeds=range(2),
            expected=None,
        )
        assert stats.detections == 0
        assert stats.rate == 0.0


class TestProfiling:
    def test_traces_roundtrip_from_result(self):
        result = philosophers_case2(seed=0).run()
        traces = traces_from_result(result)
        assert traces == [("TC", "TS", "TR")] * 3

    def test_learned_distribution_matches_observed_bias(self):
        generator = PatternGenerator(
            regex="TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)",
            alphabet=PCORE_SERVICES,
            seed=3,
        )
        source = PatternGenerator.from_pfa(pcore_pfa(), seed=3)
        traces = [p.symbols for p in source.generate_batch(400, 10)]
        dist = learn_distribution_from_patterns(generator.dfa, traces)
        start = generator.dfa.start
        after_tc = generator.dfa.step(start, "TC")
        # The paper's distribution sends 60% of TC successors to TCH.
        learned_tch = dist.get(after_tc, "TCH")
        assert learned_tch == pytest.approx(0.6, abs=0.1)
