"""Tests for committer noise injection and text reporting."""

from __future__ import annotations

import pytest

from repro.analysis.text_report import render_campaign, render_run, render_table
from repro.ptest.campaign import Campaign
from repro.ptest.config import PTestConfig
from repro.ptest.harness import run_adaptive_test
from repro.workloads.scenarios import philosophers_case2


class TestNoiseInjection:
    def test_noise_slows_the_run(self):
        quiet = run_adaptive_test(
            PTestConfig(pattern_count=3, pattern_size=6, seed=4, max_ticks=20_000)
        )
        noisy = run_adaptive_test(
            PTestConfig(
                pattern_count=3,
                pattern_size=6,
                seed=4,
                max_ticks=20_000,
                noise_ticks=20,
            )
        )
        assert noisy.commands_issued == quiet.commands_issued
        assert noisy.ticks > quiet.ticks

    def test_noise_is_seed_deterministic(self):
        config = PTestConfig(
            pattern_count=3, pattern_size=6, seed=4, max_ticks=20_000, noise_ticks=10
        )
        assert run_adaptive_test(config).ticks == run_adaptive_test(config).ticks

    def test_noise_does_not_change_pattern_semantics(self):
        config = PTestConfig(
            pattern_count=3,
            pattern_size=6,
            seed=4,
            max_ticks=20_000,
            noise_ticks=15,
        )
        result = run_adaptive_test(config)
        from repro.ptest.pcore_model import pcore_pfa

        pfa = pcore_pfa()
        for pattern in result.patterns:
            assert pfa.walk_probability(pattern) > 0.0

    def test_negative_noise_rejected(self):
        with pytest.raises(Exception):
            PTestConfig(noise_ticks=-1)


class TestTextReport:
    def test_render_table_plain(self):
        text = render_table(["a", "bb"], [(1, 2), (30, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_render_table_markdown(self):
        text = render_table(["a", "b"], [(1, 2)], markdown=True)
        assert text.startswith("| a")
        assert "|--" in text.splitlines()[1]

    def test_render_run_healthy(self):
        result = run_adaptive_test(
            PTestConfig(pattern_count=2, pattern_size=4, seed=1, max_ticks=8_000)
        )
        text = render_run(result)
        assert "no anomaly" in text
        assert "commands issued" in text
        assert "TC" in text

    def test_render_run_with_bug(self):
        result = philosophers_case2(seed=0).run()
        text = render_run(result)
        assert "deadlock" in text
        assert "bug report" in text

    def test_render_campaign(self):
        campaign = Campaign(seeds=(0,))
        campaign.add_variant("buggy", lambda s: philosophers_case2(seed=s))
        rows = campaign.run()
        text = render_campaign(rows)
        assert "buggy" in text
        assert "1.00" in text

    def test_render_campaign_markdown(self):
        campaign = Campaign(seeds=(0,))
        campaign.add_variant("x", lambda s: philosophers_case2(seed=s, ordered=True))
        text = render_campaign(campaign.run(), markdown=True)
        assert text.startswith("| variant")
