"""Tests for automata operations: completion, equivalence, enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import minimize_dfa, nfa_to_dfa
from repro.automata.nfa import regex_to_nfa
from repro.automata.operations import (
    complete,
    count_words_by_length,
    distinguishing_word,
    enumerate_words,
    equivalent,
    pfa_support_dfa,
    take,
)
from repro.automata.regex_parser import parse_regex
from repro.errors import AutomatonError
from repro.ptest.pcore_model import (
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_pfa,
    uniform_pcore_pfa,
)


def dfa_of(source: str, alphabet=None):
    return nfa_to_dfa(regex_to_nfa(parse_regex(source, alphabet=alphabet)))


class TestComplete:
    def test_complete_adds_dead_state(self):
        dfa = dfa_of("a b")
        completed = complete(dfa)
        assert completed.num_states == dfa.num_states + 1
        for state in range(completed.num_states):
            for symbol in completed.alphabet:
                assert completed.step(state, symbol) is not None

    def test_complete_preserves_language(self):
        dfa = dfa_of("a b | c")
        completed = complete(dfa)
        for word in (["a", "b"], ["c"], ["a"], ["b"], ["a", "b", "c"]):
            assert dfa.accepts_word(word) == completed.accepts_word(word)

    def test_already_complete_returned_unchanged(self):
        dfa = dfa_of("a*")  # single state, self loop, complete
        assert complete(dfa) is dfa


class TestEquivalence:
    def test_identical_regexes_equivalent(self):
        assert equivalent(dfa_of("a (b | c)"), dfa_of("a b | a c"))

    def test_star_unrolling_equivalent(self):
        assert equivalent(dfa_of("a a*"), dfa_of("a+"))

    def test_different_languages_not_equivalent(self):
        assert not equivalent(dfa_of("a b"), dfa_of("a b | a"))

    def test_different_alphabets_not_equivalent(self):
        assert not equivalent(dfa_of("a"), dfa_of("b"))

    def test_fig5_support_equals_re2(self):
        """The headline proof: the hand-built Fig. 5 PFA accepts exactly
        the language of RE (2)."""
        re2 = dfa_of(PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES)
        fig5 = pfa_support_dfa(pcore_pfa())
        assert equivalent(re2, fig5)
        assert distinguishing_word(re2, fig5) is None

    def test_uniform_variant_same_support(self):
        assert equivalent(
            pfa_support_dfa(pcore_pfa()), pfa_support_dfa(uniform_pcore_pfa())
        )

    def test_distinguishing_word_is_shortest(self):
        first = dfa_of("a b")
        second = dfa_of("a b | a")
        word = distinguishing_word(first, second)
        assert word == ("a",)

    def test_distinguishing_word_alphabet_mismatch(self):
        with pytest.raises(AutomatonError):
            distinguishing_word(dfa_of("a"), dfa_of("b"))

    def test_minimization_equivalence_checked_exactly(self):
        dfa = dfa_of(PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES)
        assert equivalent(dfa, minimize_dfa(dfa))


class TestEnumeration:
    def test_shortlex_order(self):
        words = take(enumerate_words(dfa_of("a* b")), 4)
        assert words == [("b",), ("a", "b"), ("a", "a", "b"), ("a", "a", "a", "b")]

    def test_enumerate_respects_limit_and_length(self):
        words = list(enumerate_words(dfa_of("a*"), limit=3))
        assert len(words) == 3
        words = list(enumerate_words(dfa_of("a*"), max_length=2))
        assert words == [(), ("a",), ("a", "a")]

    def test_pcore_shortest_lifecycles(self):
        fig5 = pfa_support_dfa(pcore_pfa())
        words = take(enumerate_words(fig5), 4)
        # Exactly two length-2 lifecycles exist: TC TD and TC TY.
        assert set(words[:2]) == {("TC", "TD"), ("TC", "TY")}

    def test_count_words_by_length(self):
        counts = count_words_by_length(dfa_of("a* b"), 4)
        assert counts == [0, 1, 1, 1, 1]

    def test_pcore_lifecycle_counts_explain_duplication(self):
        counts = count_words_by_length(pfa_support_dfa(pcore_pfa()), 6)
        assert counts[:3] == [0, 0, 2]  # few short words -> replication
        assert counts[6] > counts[3]

    def test_counts_match_enumeration(self):
        dfa = dfa_of(PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES)
        counts = count_words_by_length(dfa, 5)
        enumerated = [
            len([w for w in enumerate_words(dfa, max_length=5) if len(w) == n])
            for n in range(6)
        ]
        assert counts == enumerated


SYMBOLS = ["a", "b", "c"]


@st.composite
def small_regex(draw):
    from repro.automata.regex_ast import Concat, Literal, Optional_, Star, Union

    def node(depth):
        if depth == 0:
            return Literal(draw(st.sampled_from(SYMBOLS)))
        kind = draw(st.integers(min_value=0, max_value=4))
        if kind == 0:
            return Literal(draw(st.sampled_from(SYMBOLS)))
        if kind == 1:
            return Concat(node(depth - 1), node(depth - 1))
        if kind == 2:
            return Union(node(depth - 1), node(depth - 1))
        if kind == 3:
            return Star(node(depth - 1))
        return Optional_(node(depth - 1))

    return node(3)


@given(node=small_regex())
@settings(max_examples=80, deadline=None)
def test_equivalence_reflexive_through_minimization(node):
    """Property: a DFA is always equivalent to its minimization, and a
    distinguishing word never exists between them."""
    dfa = nfa_to_dfa(regex_to_nfa(node))
    mini = minimize_dfa(dfa)
    if dfa.alphabet != mini.alphabet:
        return  # minimization of empty-language DFAs can drop symbols
    assert equivalent(dfa, mini)
    assert distinguishing_word(dfa, mini) is None
