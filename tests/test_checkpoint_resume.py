"""Tests for crash-safe checkpoint/resume of adaptive campaigns.

The contract under test: ``AdaptiveCampaign(checkpoint=path)`` persists
each round's observation atomically, and ``resume=True`` replays the
completed rounds through the refine policy — re-executing zero cells —
then continues, producing results bit-identical to an uninterrupted
run.  Tampered, mismatched or torn checkpoints are refused with
:class:`~repro.errors.CheckpointError`, never silently misread.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import CheckpointError, ConfigError
from repro.ptest.adaptive import AdaptiveCampaign, GridZoom, Repeat
from repro.ptest.checkpoint import (
    CHECKPOINT_VERSION,
    CampaignCheckpoint,
    campaign_fingerprint,
)
from repro.ptest.pipeline import parse_pipeline
from repro.ptest.pool import shutdown_pools


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    shutdown_pools()
    yield
    shutdown_pools()


def _campaign(policy, rounds=3, grid=False, **kwargs) -> AdaptiveCampaign:
    campaign = AdaptiveCampaign(
        seeds=(0, 1, 2), rounds=rounds, policy=policy, workers=2, **kwargs
    )
    if grid:
        campaign.add_grid(
            "phil",
            "philosophers",
            {"ordered": [False, True], "chunk": [1, 2]},
            max_ticks=600,
        )
    else:
        campaign.add_scenario("phil", "philosophers", ordered=False, max_ticks=600)
    return campaign


def _result_signature(result):
    return [
        (
            obs.index,
            sorted(obs.variants),
            [
                (row.variant, row.runs, row.detections, row.kinds)
                for row in obs.rows
            ],
            {
                name: tuple(s.seed for s in samples)
                for name, samples in obs.detections.items()
            },
        )
        for obs in result.rounds
    ]


class TestFingerprint:
    def test_sensitive_to_identity_not_execution(self):
        base = _campaign(Repeat())
        fp = campaign_fingerprint(
            base.seeds, base.variants, Repeat(), base.capture_per_variant
        )
        # Execution knobs are excluded by design: resume may change
        # workers/batch/chaos without invalidating the checkpoint.
        assert fp == campaign_fingerprint(
            base.seeds, base.variants, Repeat(), base.capture_per_variant
        )
        assert fp != campaign_fingerprint(
            (9, 10), base.variants, Repeat(), base.capture_per_variant
        )
        assert fp != campaign_fingerprint(
            base.seeds, base.variants, GridZoom(), base.capture_per_variant
        )

    def test_pipeline_policies_have_stable_signatures(self):
        one = parse_pipeline("grid_zoom:2,replay:1")
        two = parse_pipeline("grid_zoom:2,replay:1")
        first = campaign_fingerprint((0,), {}, one, 4)
        assert first == campaign_fingerprint((0,), {}, two, 4)


class TestResumeBitIdentity:
    def test_resume_matches_straight_through(self, tmp_path):
        path = tmp_path / "run.ckpt"
        straight = _campaign(GridZoom(), grid=True).run()

        # Interrupted run: only one round completes before the "crash".
        _campaign(GridZoom(), rounds=1, grid=True, checkpoint=path).run()
        assert path.exists()

        resumed = _campaign(GridZoom(), grid=True, checkpoint=path, resume=True).run()
        assert resumed.resumed_rounds == 1
        assert _result_signature(resumed) == _result_signature(straight)
        assert "resumed: 1 round(s) replayed" in resumed.describe()

    def test_resume_rebuilds_pipeline_stage_state(self, tmp_path):
        # PolicyPipeline keeps cross-round schedule state; replay must
        # reconstruct it so the handoff round refines identically.
        path = tmp_path / "pipeline.ckpt"
        straight = _campaign(parse_pipeline("grid_zoom:2,replay:1"), grid=True).run()
        _campaign(
            parse_pipeline("grid_zoom:2,replay:1"),
            rounds=2,
            grid=True,
            checkpoint=path,
        ).run()
        resumed = _campaign(
            parse_pipeline("grid_zoom:2,replay:1"),
            grid=True,
            checkpoint=path,
            resume=True,
        ).run()
        assert resumed.resumed_rounds == 2
        assert _result_signature(resumed) == _result_signature(straight)

    def test_finished_run_resumes_as_pure_replay(self, tmp_path):
        path = tmp_path / "done.ckpt"
        first = _campaign(Repeat(), checkpoint=path).run()
        replayed = _campaign(Repeat(), checkpoint=path, resume=True).run()
        assert replayed.resumed_rounds == len(first.rounds) == 3
        assert _result_signature(replayed) == _result_signature(first)

    def test_extending_rounds_continues_from_checkpoint(self, tmp_path):
        path = tmp_path / "extend.ckpt"
        _campaign(Repeat(), rounds=2, checkpoint=path).run()
        extended = _campaign(Repeat(), rounds=4, checkpoint=path, resume=True).run()
        assert extended.resumed_rounds == 2
        assert [obs.index for obs in extended.rounds] == [0, 1, 2, 3]
        assert _result_signature(extended) == _result_signature(
            _campaign(Repeat(), rounds=4).run()
        )

    def test_resume_under_chaos_matches_clean_straight_through(
        self, tmp_path
    ):
        # The full matrix corner: a checkpoint written under injected
        # worker kills, resumed under the same chaos, must equal a
        # clean uninterrupted run — chaos is an execution knob, not an
        # identity change, so it is not fingerprinted either.
        from repro.ptest.chaos import ChaosSpec

        path = tmp_path / "chaos.ckpt"
        straight = _campaign(Repeat()).run()
        chaos = ChaosSpec(seed=3, kill_rate=0.15)
        _campaign(
            Repeat(),
            rounds=1,
            checkpoint=path,
            chaos=chaos,
            cell_timeout=60.0,
        ).run()
        resumed = _campaign(
            Repeat(),
            checkpoint=path,
            resume=True,
            chaos=chaos,
            cell_timeout=60.0,
        ).run()
        assert resumed.resumed_rounds == 1
        assert _result_signature(resumed) == _result_signature(straight)

    def test_resume_may_change_execution_configuration(self, tmp_path):
        # workers/batch_size are not fingerprinted: the determinism
        # contract says they cannot change results.
        path = tmp_path / "exec.ckpt"
        _campaign(Repeat(), rounds=1, checkpoint=path).run()
        resumed = AdaptiveCampaign(
            seeds=(0, 1, 2),
            rounds=3,
            policy=Repeat(),
            workers=1,
            batch_size=1,
            checkpoint=path,
            resume=True,
        )
        resumed.add_scenario("phil", "philosophers", ordered=False, max_ticks=600)
        result = resumed.run()
        assert _result_signature(result) == _result_signature(_campaign(Repeat()).run())


class TestCheckpointHygiene:
    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "atomic.ckpt"
        _campaign(Repeat(), rounds=1, checkpoint=path).run()
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["atomic.ckpt"]

    def test_stopped_early_is_persisted(self, tmp_path):
        path = tmp_path / "early.ckpt"

        class _StopNow:
            def refine(self, observation):
                return None

            def describe(self):
                return "stop-now"

        campaign = _campaign(_StopNow(), checkpoint=path)
        result = campaign.run()
        assert result.stopped_early
        payload = pickle.loads(path.read_bytes())
        assert payload["stopped_early"] is True
        assert payload["finished"] is True

    def test_corrupt_checkpoint_refused(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError, match="corrupt"):
            _campaign(Repeat(), checkpoint=path, resume=True).run()

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "old.ckpt"
        store = CampaignCheckpoint(path)
        path.write_bytes(
            pickle.dumps({"version": CHECKPOINT_VERSION + 1, "fingerprint": ""})
        )
        with pytest.raises(CheckpointError, match="version"):
            store.load("anything")

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "other.ckpt"
        _campaign(Repeat(), rounds=1, checkpoint=path).run()
        # Same checkpoint, different seeds: a different campaign.
        other = AdaptiveCampaign(
            seeds=(7, 8),
            rounds=2,
            policy=Repeat(),
            workers=2,
            checkpoint=path,
            resume=True,
        )
        other.add_scenario("phil", "philosophers", ordered=False, max_ticks=600)
        with pytest.raises(CheckpointError, match="different campaign"):
            other.run()

    def test_resume_without_checkpoint_is_config_error(self):
        campaign = AdaptiveCampaign(seeds=(0,), rounds=1, policy=Repeat(), resume=True)
        campaign.add_scenario("phil", "philosophers", ordered=False, max_ticks=600)
        with pytest.raises(ConfigError, match="checkpoint"):
            campaign.run()

    def test_resume_with_no_checkpoint_yet_starts_fresh(self, tmp_path):
        # First invocation of an always-pass-``--resume`` workflow:
        # nothing on disk yet, so the run starts from round 0 and
        # *creates* the checkpoint rather than refusing.
        path = tmp_path / "first-run.ckpt"
        result = _campaign(Repeat(), checkpoint=path, resume=True).run()
        assert result.resumed_rounds == 0
        assert len(result.rounds) == 3
        assert path.exists()

    def test_clear_removes_and_tolerates_missing(self, tmp_path):
        path = tmp_path / "gone.ckpt"
        store = CampaignCheckpoint(path)
        store.save(
            fingerprint="x",
            observations=[],
            prewarmed_refs=0,
            stopped_early=False,
            finished=False,
        )
        assert store.exists()
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent
