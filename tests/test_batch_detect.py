"""Batched deadlock detection: screen + confirm vs the scalar search.

:func:`~repro.ptest.batchdetect.find_cycles_batch` promises exactly
``[find_cycle_edges(edges) for edges in edge_sets]`` — the vectorized
Kahn peel only rules out the acyclic majority faster, and cyclic
survivors are confirmed by the very scalar search the sweep would have
run.  These tests sweep that promise over seeded random digraphs and
the degenerate shapes (empty sets, self-loops, disjoint multi-cycles),
then cover the recording path end to end: ``record_wait_deltas``
snapshots taken during a real deadlocking run, the snapshot-order
contract, :meth:`BugDetector.sweep_batch`, and the campaign-level
:func:`audit_deadlocks` consistency verdicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

import pytest

from repro.automata.batch import NO_NUMPY_ENV, numpy_available
from repro.errors import ConfigError
from repro.ptest.batchdetect import (
    DeadlockAudit,
    audit_deadlocks,
    cycle_tids_batch,
    find_cycles_batch,
)
from repro.ptest.detector import Anomaly, AnomalyKind, BugDetector
from repro.ptest.waitgraph import IncrementalWaitForGraph, find_cycle_edges
from repro.workloads.scenarios import philosophers_case2


def random_edge_sets(seed: int, count: int) -> list[list[tuple[int, int]]]:
    """``count`` small random digraphs, cyclic and acyclic mixed."""
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        nodes = rng.randrange(0, 9)
        edges = [
            (rng.randrange(nodes), rng.randrange(nodes))
            for _ in range(rng.randrange(0, 2 * nodes + 1))
        ] if nodes else []
        sets.append(edges)
    return sets


class TestFindCyclesBatch:
    @pytest.mark.parametrize("seed", [0, 1, 7, 2026])
    def test_matches_scalar_on_random_digraphs(self, seed):
        sets = random_edge_sets(seed, 120)
        expected = [find_cycle_edges(edges) for edges in sets]
        assert find_cycles_batch(sets) == expected
        # The screen must find work in both directions to mean much.
        assert any(cycle is not None for cycle in expected)
        assert any(cycle is None for cycle in expected)

    def test_degenerate_shapes(self):
        sets = [
            [],  # no edges at all
            [(3, 3)],  # self-loop: a one-edge cycle
            [(0, 1), (1, 2)],  # plain chain
            [(0, 1), (1, 0), (5, 6), (6, 5)],  # two disjoint cycles
            [(2, 1), (1, 2), (0, 1)],  # tail feeding a cycle
            [(-4, -3), (-3, -4)],  # negative node ids
        ]
        expected = [find_cycle_edges(edges) for edges in sets]
        assert find_cycles_batch(sets) == expected
        assert expected[0] is None
        assert expected[1] == [(3, 3)]
        assert expected[2] is None

    def test_empty_batch_and_all_empty_sets(self):
        assert find_cycles_batch([]) == []
        assert find_cycles_batch([[], [], []]) == [None, None, None]

    def test_scalar_fallback_is_identical(self):
        sets = random_edge_sets(42, 60)
        assert find_cycles_batch(sets, use_numpy=False) == (
            find_cycles_batch(sets)
        )

    def test_env_var_falls_back_bit_identically(self, monkeypatch):
        sets = random_edge_sets(43, 60)
        expected = find_cycles_batch(sets)
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert find_cycles_batch(sets) == expected

    def test_explicit_request_raises_without_numpy(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        with pytest.raises(ConfigError, match="find_cycles_batch"):
            find_cycles_batch([[(0, 1)]], use_numpy=True)

    def test_cycle_tids_reduction(self):
        sets = [
            [(0, 1), (1, 2)],
            [(7, 3), (3, 7), (1, 7)],
            [(5, 5)],
        ]
        assert cycle_tids_batch(sets) == [None, (3, 7), (5,)]
        assert cycle_tids_batch(sets, use_numpy=False) == (
            cycle_tids_batch(sets)
        )


class TestSnapshotContract:
    def test_snapshot_feeds_the_scalar_search_in_order(self):
        graph = IncrementalWaitForGraph()
        # Two resources holding a cycle plus a tail; the snapshot must
        # replay through find_cycle_edges to the cached cycle exactly.
        graph._edges_by_resource = {
            "m1": ((1, 2),),
            "m0": ((2, 1), (3, 1)),
        }
        graph._dirty = True
        snapshot = graph.snapshot()
        assert snapshot == ((1, 2), (2, 1), (3, 1))
        assert find_cycle_edges(snapshot) == graph.find_cycle()
        assert find_cycles_batch([snapshot]) == [graph.find_cycle()]


@dataclass
class _FakeResult:
    """The duck-typed slice of TestRunResult audit_deadlocks reads."""

    anomalies: list
    wait_deltas: tuple = ()


def _deadlock_anomaly(tids: tuple[int, ...]) -> Anomaly:
    return Anomaly(
        kind=AnomalyKind.DEADLOCK,
        detected_at=100,
        description="test deadlock",
        tids=tids,
    )


class TestAuditDeadlocks:
    def test_confirmed_when_a_snapshot_supports_the_report(self):
        result = _FakeResult(
            anomalies=[_deadlock_anomaly((1, 2))],
            wait_deltas=(
                (10, ((1, 2),)),
                (20, ((1, 2), (2, 1))),
            ),
        )
        audit = audit_deadlocks([result])
        assert audit == DeadlockAudit(
            runs=1, snapshots=2, confirmed=1
        )
        assert audit.consistent

    def test_unsupported_report_is_an_inconsistency(self):
        result = _FakeResult(
            anomalies=[_deadlock_anomaly((5, 6))],
            wait_deltas=((10, ((1, 2), (2, 1))),),
        )
        audit = audit_deadlocks([result])
        assert audit.confirmed == 0
        assert audit.unsupported == [(0, (5, 6))]
        assert not audit.consistent

    def test_cycle_without_report_is_informational(self):
        # Legitimate under the confirmation debounce: the cycle showed
        # up in a delta but never survived long enough to report.
        result = _FakeResult(
            anomalies=[],
            wait_deltas=((10, ((1, 2), (2, 1))),),
        )
        audit = audit_deadlocks([result])
        assert audit.cyclic_without_report == 1
        assert audit.consistent

    def test_runs_without_recording_are_counted_but_empty(self):
        audit = audit_deadlocks([_FakeResult(anomalies=[])])
        assert audit == DeadlockAudit(runs=1, snapshots=0)

    def test_scalar_fallback_audit_is_identical(self):
        results = [
            _FakeResult(
                anomalies=[_deadlock_anomaly((1, 2))],
                wait_deltas=((10, ((1, 2), (2, 1))),),
            ),
            _FakeResult(
                anomalies=[],
                wait_deltas=((5, ((0, 1), (1, 2))),),
            ),
        ]
        assert audit_deadlocks(results, use_numpy=False) == (
            audit_deadlocks(results)
        )


class TestEndToEndRecording:
    @pytest.fixture(scope="class")
    def deadlocked_run(self):
        test = philosophers_case2(seed=0, op="cyclic")
        test.config = replace(test.config, record_wait_deltas=True)
        return test.run()

    def test_deltas_recorded_only_when_asked(self, deadlocked_run):
        assert deadlocked_run.found_bug
        assert deadlocked_run.wait_deltas
        for tick, edges in deadlocked_run.wait_deltas:
            assert isinstance(tick, int)
            assert all(len(edge) == 2 for edge in edges)
        # Off by default: the same scenario records nothing.
        plain = philosophers_case2(seed=0, op="cyclic").run()
        assert plain.found_bug
        assert plain.wait_deltas == ()

    def test_recording_does_not_perturb_the_run(self, deadlocked_run):
        plain = philosophers_case2(seed=0, op="cyclic").run()
        assert plain.ticks == deadlocked_run.ticks
        assert plain.patterns == deadlocked_run.patterns
        assert [a.kind for a in plain.anomalies] == [
            a.kind for a in deadlocked_run.anomalies
        ]

    def test_audit_confirms_the_reported_deadlock(self, deadlocked_run):
        audit = audit_deadlocks([deadlocked_run])
        assert audit.runs == 1
        assert audit.snapshots == len(deadlocked_run.wait_deltas)
        assert audit.confirmed == 1
        assert audit.consistent

    def test_sweep_batch_replays_the_recorded_deltas(self, deadlocked_run):
        snapshots = [edges for _tick, edges in deadlocked_run.wait_deltas]
        tids = BugDetector.sweep_batch(snapshots)
        assert tids == cycle_tids_batch(snapshots)
        reported = {
            anomaly.tids
            for anomaly in deadlocked_run.anomalies
            if anomaly.kind is AnomalyKind.DEADLOCK
        }
        found = {cycle for cycle in tids if cycle is not None}
        assert reported <= found
        if numpy_available():
            assert BugDetector.sweep_batch(
                snapshots, use_numpy=False
            ) == tids
