"""Unit tests for pCore building blocks: TCB, scheduler, memory, sync."""

from __future__ import annotations

import pytest

from repro.errors import KernelError, ServiceError
from repro.pcore.memory import (
    GarbageCollector,
    GarbageItem,
    KernelMemory,
    PCORE_INTERNAL_MEMORY_BYTES,
)
from repro.pcore.scheduler import PriorityScheduler
from repro.pcore.sync import KMutex, KSemaphore
from repro.pcore.tcb import TaskControlBlock, TaskState


def make_task(tid: int, priority: int, state=TaskState.READY) -> TaskControlBlock:
    return TaskControlBlock(tid=tid, name=f"t{tid}", priority=priority, state=state)


class TestTCB:
    def test_legal_transition(self):
        task = make_task(1, 5)
        task.transition(TaskState.RUNNING)
        assert task.state is TaskState.RUNNING

    def test_illegal_transition_raises(self):
        task = make_task(1, 5)
        with pytest.raises(ServiceError):
            task.transition(TaskState.BLOCKED)  # READY -> BLOCKED illegal

    def test_terminated_is_terminal(self):
        task = make_task(1, 5)
        task.transition(TaskState.TERMINATED)
        with pytest.raises(ServiceError):
            task.transition(TaskState.READY)

    def test_self_transition_is_noop(self):
        task = make_task(1, 5)
        task.transition(TaskState.READY)
        assert task.state is TaskState.READY

    def test_suspended_can_reblock(self):
        task = make_task(1, 5, state=TaskState.SUSPENDED)
        task.transition(TaskState.BLOCKED)
        assert task.state is TaskState.BLOCKED

    def test_describe_mentions_waiting_resource(self):
        task = make_task(1, 5, state=TaskState.SUSPENDED)
        task.transition(TaskState.BLOCKED)
        task.waiting_on = "fork1"
        assert "fork1" in task.describe()

    def test_alive_and_runnable(self):
        task = make_task(1, 5)
        assert task.alive and task.runnable
        task.transition(TaskState.TERMINATED)
        assert not task.alive


class TestPriorityScheduler:
    def test_dispatch_order_by_priority(self):
        scheduler = PriorityScheduler()
        for tid, priority in ((1, 3), (2, 9), (3, 5)):
            scheduler.enqueue(make_task(tid, priority))
        assert scheduler.dispatch().tid == 2
        assert scheduler.peek().tid == 3

    def test_enqueue_requires_ready(self):
        scheduler = PriorityScheduler()
        with pytest.raises(KernelError):
            scheduler.enqueue(make_task(1, 1, state=TaskState.SUSPENDED))

    def test_double_enqueue_rejected(self):
        scheduler = PriorityScheduler()
        task = make_task(1, 1)
        scheduler.enqueue(task)
        with pytest.raises(KernelError):
            scheduler.enqueue(task)

    def test_should_preempt(self):
        scheduler = PriorityScheduler()
        low = make_task(1, 1)
        scheduler.enqueue(low)
        current = scheduler.dispatch()
        current.transition(TaskState.RUNNING)
        assert not scheduler.should_preempt()
        scheduler.enqueue(make_task(2, 9))
        assert scheduler.should_preempt()

    def test_remove_clears_current(self):
        scheduler = PriorityScheduler()
        task = make_task(1, 1)
        scheduler.enqueue(task)
        scheduler.dispatch()
        scheduler.remove(task)
        assert scheduler.current is None

    def test_yield_current(self):
        scheduler = PriorityScheduler()
        task = make_task(1, 1)
        scheduler.enqueue(task)
        scheduler.dispatch()
        scheduler.yield_current()
        assert scheduler.current is None

    def test_len_counts_ready(self):
        scheduler = PriorityScheduler()
        scheduler.enqueue(make_task(1, 1))
        scheduler.enqueue(make_task(2, 2))
        assert len(scheduler) == 2


class TestKernelMemory:
    def test_default_capacity_is_160k(self):
        assert KernelMemory().capacity == PCORE_INTERNAL_MEMORY_BYTES

    def test_allocate_and_free_roundtrip(self):
        memory = KernelMemory(capacity=1024)
        block = memory.allocate(100, tag="x")
        assert block is not None
        assert memory.allocated_bytes == 100
        memory.free(block)
        assert memory.allocated_bytes == 0
        assert memory.largest_hole() == 1024

    def test_exhaustion_returns_none(self):
        memory = KernelMemory(capacity=128)
        assert memory.allocate(128) is not None
        assert memory.allocate(1) is None
        assert memory.failures == 1

    def test_first_fit_reuses_holes(self):
        memory = KernelMemory(capacity=300)
        first = memory.allocate(100)
        memory.allocate(100)
        memory.free(first)
        third = memory.allocate(50)
        assert third.offset == 0  # reused the first hole

    def test_coalescing_adjacent_holes(self):
        memory = KernelMemory(capacity=300)
        blocks = [memory.allocate(100) for _ in range(3)]
        for block in blocks:
            memory.free(block)
        assert memory.largest_hole() == 300

    def test_double_free_rejected(self):
        memory = KernelMemory(capacity=100)
        block = memory.allocate(10)
        memory.free(block)
        with pytest.raises(KernelError):
            memory.free(block)

    def test_bad_sizes_rejected(self):
        memory = KernelMemory(capacity=100)
        with pytest.raises(KernelError):
            memory.allocate(0)
        with pytest.raises(KernelError):
            KernelMemory(capacity=0)


class TestGarbageCollector:
    def _item(self, memory: KernelMemory, midflight: bool) -> GarbageItem:
        block = memory.allocate(64)
        return GarbageItem(tid=1, blocks=[block], killed_midflight=midflight)

    def test_correct_collector_reclaims_everything(self):
        memory = KernelMemory(capacity=1024)
        gc = GarbageCollector(memory)
        gc.defer(self._item(memory, midflight=True))
        gc.defer(self._item(memory, midflight=False))
        reclaimed = gc.collect()
        assert reclaimed == 128
        assert memory.allocated_bytes == 0
        assert gc.leaked_bytes == 0

    def test_buggy_collector_leaks_midflight_kills(self):
        memory = KernelMemory(capacity=1024)
        gc = GarbageCollector(memory, buggy=True)
        gc.defer(self._item(memory, midflight=True))
        gc.defer(self._item(memory, midflight=False))
        reclaimed = gc.collect()
        assert reclaimed == 64  # only the natural death
        assert gc.leaked_bytes == 64
        assert gc.leaked_items == 1
        assert memory.allocated_bytes == 64  # the leak stays allocated

    def test_pending_bytes(self):
        memory = KernelMemory(capacity=1024)
        gc = GarbageCollector(memory)
        gc.defer(self._item(memory, midflight=False))
        assert gc.pending_bytes == 64
        gc.collect()
        assert gc.pending_bytes == 0


class TestKMutex:
    def test_acquire_free(self):
        mutex = KMutex(name="m")
        assert mutex.try_acquire(1)
        assert mutex.owner == 1

    def test_contention_queues_waiter(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        assert not mutex.try_acquire(2)
        assert mutex.waiters == [2]
        assert mutex.contentions == 1

    def test_release_promotes_fifo(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        mutex.try_acquire(2)
        mutex.try_acquire(3)
        promoted = mutex.release(1)
        assert promoted == 2
        assert mutex.owner == 2
        assert mutex.waiters == [3]

    def test_release_by_non_owner_raises(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        with pytest.raises(KernelError):
            mutex.release(2)

    def test_recursive_acquire_raises(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        with pytest.raises(KernelError):
            mutex.try_acquire(1)

    def test_forfeit_promotes(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        mutex.try_acquire(2)
        assert mutex.forfeit(1) == 2
        assert mutex.owner == 2

    def test_forfeit_by_non_owner_is_noop(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        assert mutex.forfeit(2) is None
        assert mutex.owner == 1

    def test_drop_waiter(self):
        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        mutex.try_acquire(2)
        mutex.drop_waiter(2)
        assert mutex.waiters == []


class TestKSemaphore:
    def test_counting_behaviour(self):
        semaphore = KSemaphore(name="s", count=2)
        assert semaphore.try_acquire(1)
        assert semaphore.try_acquire(2)
        assert not semaphore.try_acquire(3)
        assert semaphore.waiters == [3]

    def test_release_hands_to_waiter_without_increment(self):
        semaphore = KSemaphore(name="s", count=1)
        semaphore.try_acquire(1)
        semaphore.try_acquire(2)
        woken = semaphore.release(1)
        assert woken == 2
        assert semaphore.count == 0  # handed over, not incremented

    def test_release_without_waiters_increments(self):
        semaphore = KSemaphore(name="s", count=0)
        assert semaphore.release(1) is None
        assert semaphore.count == 1

    def test_negative_count_rejected(self):
        with pytest.raises(KernelError):
            KSemaphore(name="s", count=-1)

    def test_forfeit_is_noop(self):
        semaphore = KSemaphore(name="s", count=1)
        assert semaphore.forfeit(1) is None
