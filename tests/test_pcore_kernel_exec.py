"""Tests for kernel task execution: scheduling, syscalls, GC fault."""

from __future__ import annotations

from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.memory import TCB_BYTES
from repro.pcore.programs import (
    Acquire,
    Compute,
    Exit,
    MemRead,
    MemWrite,
    Release,
    Sleep,
    YieldCpu,
)
from repro.pcore.services import ServiceCode, ServiceStatus
from repro.pcore.tcb import TaskState
from repro.sim.memory import SharedMemory

from repro.pcore.testkit import create_task, run_service


def run_steps(kernel: PCoreKernel, count: int, start: int = 0) -> int:
    for tick in range(start, start + count):
        kernel.step(tick)
    return start + count


class TestScheduling:
    def test_highest_priority_runs_first(self, kernel):
        low = create_task(kernel, priority=1).value
        high = create_task(kernel, priority=9).value
        kernel.step(0)
        assert kernel.tasks[high].state is TaskState.RUNNING
        assert kernel.tasks[low].state is TaskState.READY

    def test_new_higher_priority_preempts(self, kernel):
        def spin(ctx):
            while True:
                yield Compute(1)

        kernel.register_program("spin", spin)
        low = create_task(kernel, priority=1, program="spin").value
        kernel.step(0)
        assert kernel.tasks[low].state is TaskState.RUNNING
        high = create_task(kernel, priority=9, program="spin").value
        kernel.step(1)
        assert kernel.tasks[high].state is TaskState.RUNNING
        assert kernel.tasks[low].state is TaskState.READY
        assert kernel.scheduler.preemptions >= 1

    def test_task_finishes_and_lower_resumes(self, kernel):
        def quick(ctx):
            yield Compute(2)
            yield Exit(0)

        kernel.register_program("quick", quick)
        low = create_task(kernel, priority=1, program="quick").value
        high = create_task(kernel, priority=9, program="quick").value
        run_steps(kernel, 10)
        assert high not in kernel.tasks  # exited and reaped
        assert low not in kernel.tasks

    def test_idle_kernel_reports_no_work(self, kernel):
        assert kernel.step(0) is False
        assert kernel.idle_steps == 1


class TestSyscalls:
    def test_compute_charges_steps(self, kernel):
        def worker(ctx):
            yield Compute(5)
            yield Exit("done")

        kernel.register_program("worker", worker)
        tid = create_task(kernel, priority=1, program="worker").value
        run_steps(kernel, 5)
        assert tid in kernel.tasks  # still burning compute
        run_steps(kernel, 3, start=5)
        assert tid not in kernel.tasks

    def test_yieldcpu_requeues(self, kernel):
        order = []

        def polite(name):
            def program(ctx):
                for _ in range(2):
                    order.append(name)
                    yield YieldCpu()
                yield Exit(0)

            return program

        kernel.register_program("a", polite("a"))
        kernel.register_program("b", polite("b"))
        create_task(kernel, priority=2, program="a")
        create_task(kernel, priority=1, program="b")
        run_steps(kernel, 12)
        # Priority 2 runs to completion first (strict priority), then b.
        assert order == ["a", "a", "b", "b"]

    def test_sleep_wakes_after_ticks(self, kernel):
        def sleeper(ctx):
            yield Sleep(5)
            yield Exit("woke")

        kernel.register_program("sleeper", sleeper)
        tid = create_task(kernel, priority=1, program="sleeper").value
        run_steps(kernel, 3)
        assert kernel.tasks[tid].state is TaskState.SLEEPING
        run_steps(kernel, 8, start=3)
        assert tid not in kernel.tasks

    def test_mem_read_write(self, kernel):
        def writer(ctx):
            yield MemWrite(0x100, 1234)
            value = yield MemRead(0x100)
            yield MemWrite(0x102, value + 1)
            yield Exit(0)

        kernel.register_program("writer", writer)
        create_task(kernel, priority=1, program="writer")
        run_steps(kernel, 8)
        assert kernel.shared_memory.read_u16(0x100) == 1234
        assert kernel.shared_memory.read_u16(0x102) == 1235

    def test_memread_without_memory_panics(self):
        kernel = PCoreKernel(config=KernelConfig())  # no shared memory

        def reader(ctx):
            yield MemRead(0)

        kernel.register_program("reader", reader)
        create_task(kernel, priority=1, program="reader")
        run_steps(kernel, 3)
        assert kernel.is_halted()

    def test_acquire_release_uncontended(self, kernel):
        def locker(ctx):
            yield Acquire("lock")
            yield Compute(2)
            yield Release("lock")
            yield Exit(0)

        kernel.register_program("locker", locker)
        tid = create_task(kernel, priority=1, program="locker").value
        run_steps(kernel, 10)
        assert tid not in kernel.tasks
        assert kernel.resources["lock"].owner is None

    def test_contended_mutex_blocks_and_hands_over(self, kernel):
        def hold_long(ctx):
            yield Acquire("lock")
            yield Compute(6)
            yield Release("lock")
            yield Exit(0)

        def want_lock(ctx):
            yield Acquire("lock")
            yield Release("lock")
            yield Exit(0)

        kernel.register_program("holder", hold_long)
        kernel.register_program("waiter", want_lock)
        holder = create_task(kernel, priority=9, program="holder").value
        waiter = create_task(kernel, priority=1, program="waiter").value
        run_steps(kernel, 4)
        assert kernel.tasks[waiter].state in (TaskState.READY, TaskState.BLOCKED)
        run_steps(kernel, 20, start=4)
        assert holder not in kernel.tasks
        assert waiter not in kernel.tasks

    def test_generator_return_terminates(self, kernel):
        def returns(ctx):
            yield Compute(1)
            # falls off the end: StopIteration

        kernel.register_program("returns", returns)
        tid = create_task(kernel, priority=1, program="returns").value
        run_steps(kernel, 5)
        assert tid not in kernel.tasks


class TestWaitForEdges:
    def test_edges_reflect_mutex_waiters(self, kernel):
        def holder(ctx):
            yield Acquire("m")
            while True:
                yield Compute(1)
                yield YieldCpu()

        def waiter(ctx):
            yield Acquire("m")
            yield Exit(0)

        kernel.register_program("holder", holder)
        kernel.register_program("waiter", waiter)
        hold_tid = create_task(kernel, priority=9, program="holder").value
        wait_tid = create_task(kernel, priority=1, program="waiter").value
        # Suspend the holder so the waiter gets CPU and blocks.
        run_steps(kernel, 3)
        run_service(kernel, ServiceCode.TS, target=hold_tid)
        run_steps(kernel, 4, start=3)
        edges = kernel.wait_for_edges()
        assert (wait_tid, hold_tid, "m") in edges

    def test_deleting_owner_promotes_waiter(self, kernel):
        def holder(ctx):
            yield Acquire("m")
            while True:
                yield Compute(1)

        def waiter(ctx):
            yield Acquire("m")
            yield Release("m")
            yield Exit(0)

        kernel.register_program("holder", holder)
        kernel.register_program("waiter", waiter)
        hold_tid = create_task(kernel, priority=9, program="holder").value
        wait_tid = create_task(kernel, priority=1, program="waiter").value
        run_steps(kernel, 2)
        run_service(kernel, ServiceCode.TS, target=hold_tid)
        run_steps(kernel, 3, start=2)  # waiter blocks
        run_service(kernel, ServiceCode.TD, target=hold_tid)
        run_steps(kernel, 6, start=5)
        assert wait_tid not in kernel.tasks  # promoted, ran, exited


class TestGCFault:
    def _churn_kernel(self, buggy: bool) -> PCoreKernel:
        per_task = TCB_BYTES + 512
        # Room for 4 tasks plus two spare slots of slack.
        config = KernelConfig(
            max_tasks=4,
            memory_bytes=per_task * 6,
            gc_interval=4,
            buggy_gc=buggy,
        )
        return PCoreKernel(config=config, shared_memory=SharedMemory(1024))

    def _churn(self, kernel: PCoreKernel, cycles: int) -> None:
        tick = 0
        for _ in range(cycles):
            result = create_task(kernel, priority=1)
            if not result.ok:
                return
            tick = run_steps(kernel, 2, start=tick)
            run_service(kernel, ServiceCode.TD, target=result.value)
            tick = run_steps(kernel, 6, start=tick)

    def test_correct_gc_survives_churn(self):
        kernel = self._churn_kernel(buggy=False)
        self._churn(kernel, cycles=60)
        assert not kernel.is_halted()
        assert kernel.gc.leaked_bytes == 0

    def test_buggy_gc_leaks_and_panics(self):
        kernel = self._churn_kernel(buggy=True)
        self._churn(kernel, cycles=60)
        assert kernel.is_halted()
        assert "allocation failed" in kernel.panic_reason
        assert kernel.gc.leaked_bytes > 0

    def test_natural_exits_do_not_leak_even_with_buggy_gc(self):
        kernel = self._churn_kernel(buggy=True)

        def quick(ctx):
            yield Exit(0)

        kernel.register_program("quick", quick)
        tick = 0
        for _ in range(40):
            result = create_task(kernel, priority=1, program="quick")
            assert result.ok
            tick = run_steps(kernel, 8, start=tick)  # exits on its own
        assert not kernel.is_halted()
        assert kernel.gc.leaked_bytes == 0


class TestPanicBehaviour:
    def test_panic_is_sticky(self, kernel):
        kernel.panic("first")
        kernel.panic("second")
        assert kernel.panic_reason == "first"

    def test_halted_kernel_does_not_step(self, kernel):
        kernel.panic("down")
        assert kernel.step(0) is False

    def test_internal_kernel_error_becomes_panic(self, kernel):
        def bad(ctx):
            yield Release("never_acquired")

        kernel.register_program("bad", bad)
        create_task(kernel, priority=1, program="bad")
        run_steps(kernel, 3)
        assert kernel.is_halted()
        assert "kernel fault" in kernel.panic_reason
