"""Tests for the committer and the AdaptiveTest harness (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.bridge.bridge import build_bridge
from repro.errors import ConfigError
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.services import ServiceCode, ServiceStatus
from repro.ptest.committer import Committer, PairBinding, PRIORITY_BAND
from repro.ptest.config import PTestConfig
from repro.ptest.harness import AdaptiveTest, run_adaptive_test
from repro.ptest.merger import PatternMerger
from repro.ptest.patterns import TestPattern
from repro.ptest.recording import ProcessStateRecorder
from repro.sim.mailbox import MailboxBank


def build_committer(symbol_lists, lockstep=True, pair_programs=None):
    patterns = [
        TestPattern(pattern_id=i, symbols=tuple(s))
        for i, s in enumerate(symbol_lists)
    ]
    merged = PatternMerger(op="round_robin").merge(patterns)
    bank = MailboxBank.omap5912()
    kernel = PCoreKernel(config=KernelConfig())
    bridge_master, slave = build_bridge(bank, kernel)
    recorder = ProcessStateRecorder()
    committer = Committer(
        bridge=bridge_master,
        merged=merged,
        recorder=recorder,
        lockstep=lockstep,
        pair_programs=pair_programs,
    )
    return committer, slave, kernel, recorder


def run_pair(committer, slave, ticks):
    for tick in range(ticks):
        committer.step(tick)
        slave.step(tick)
        if committer.done:
            break


class TestPairBinding:
    def test_priority_bands_do_not_overlap(self):
        a = PairBinding(pair_id=0, program="idle")
        b = PairBinding(pair_id=1, program="idle")
        a_range = {a.next_priority() for _ in range(PRIORITY_BAND)}
        b_range = {b.next_priority() for _ in range(PRIORITY_BAND)}
        assert a_range.isdisjoint(b_range)

    def test_master_state_label_tracks_issues(self):
        binding = PairBinding(pair_id=2, program="idle")
        assert binding.master_state() == "m2.0"
        binding.issued = 3
        assert binding.master_state() == "m2.3"


class TestCommitter:
    def test_full_lifecycle_executes(self):
        committer, slave, kernel, _ = build_committer([("TC", "TS", "TR", "TD")])
        run_pair(committer, slave, 200)
        assert committer.done
        assert committer.issued == 4
        statuses = [r.status for r in committer.results]
        assert all(s is ServiceStatus.OK for s in statuses)
        assert not kernel.tasks  # created then deleted

    def test_tc_reply_binds_tid(self):
        committer, slave, kernel, _ = build_committer([("TC",)])
        run_pair(committer, slave, 50)
        assert committer.bindings[0].tid is not None

    def test_td_clears_tid(self):
        committer, slave, _, _ = build_committer([("TC", "TD")])
        run_pair(committer, slave, 100)
        assert committer.bindings[0].tid is None

    def test_two_pairs_create_two_tasks(self):
        committer, slave, kernel, _ = build_committer([("TC",), ("TC",)])
        run_pair(committer, slave, 100)
        assert len(kernel.tasks) == 2
        priorities = {t.priority for t in kernel.tasks.values()}
        assert len(priorities) == 2  # distinct bands

    def test_lockstep_preserves_merged_order_per_pair(self):
        committer, slave, kernel, _ = build_committer(
            [("TC", "TS", "TR", "TD"), ("TC", "TCH", "TD")]
        )
        run_pair(committer, slave, 300)
        assert committer.done
        assert committer.error_results == []

    def test_recorder_sees_issues_and_states(self):
        committer, slave, kernel, recorder = build_committer([("TC", "TS")])
        run_pair(committer, slave, 100)
        record = recorder.record(0)
        assert record.sequence_number == 2
        assert record.remaining == ()

    def test_ty_targets_own_pair_task(self):
        committer, slave, kernel, _ = build_committer([("TC", "TY")])
        run_pair(committer, slave, 100)
        assert committer.done
        assert not kernel.tasks
        ty_result = [
            r for r in committer.results
            if r.request.service is ServiceCode.TY
        ][0]
        assert ty_result.ok

    def test_error_replies_are_collected_not_fatal(self):
        # TS on a task that already exited by TY: NO_SUCH_TASK.
        committer, slave, kernel, _ = build_committer([("TC", "TY", "TD")])
        run_pair(committer, slave, 200)
        assert committer.done
        assert len(committer.error_results) == 1
        assert committer.error_results[0].status is ServiceStatus.NO_SUCH_TASK

    def test_pair_programs_override(self):
        seen = []

        def probe(ctx):
            seen.append(ctx.name)
            from repro.pcore.programs import Exit

            yield Exit(0)

        committer, slave, kernel, _ = build_committer(
            [("TC",), ("TC",)], pair_programs=("idle", "probe")
        )
        kernel.register_program("probe", probe)
        run_pair(committer, slave, 100)
        assert any(name.startswith("probe") for name in seen)

    def test_unknown_symbol_raises(self):
        with pytest.raises(ConfigError):
            committer, slave, _, _ = build_committer([("XX",)])
            run_pair(committer, slave, 10)


class TestHarness:
    def test_healthy_run_finds_nothing(self):
        result = run_adaptive_test(
            PTestConfig(pattern_count=3, pattern_size=6, seed=1, max_ticks=5000)
        )
        assert not result.found_bug
        assert result.commands_issued > 0
        assert result.service_counts.get("TC", 0) >= 3

    def test_deterministic_results_under_seed(self):
        config = PTestConfig(pattern_count=3, pattern_size=6, seed=9, max_ticks=5000)
        first = run_adaptive_test(config)
        second = run_adaptive_test(config)
        assert first.patterns == second.patterns
        assert first.commands_issued == second.commands_issued
        assert first.ticks == second.ticks

    def test_patterns_respect_re2(self):
        result = run_adaptive_test(
            PTestConfig(pattern_count=5, pattern_size=8, seed=2, max_ticks=5000)
        )
        from repro.ptest.pcore_model import pcore_pfa

        pfa = pcore_pfa()
        for pattern in result.patterns:
            assert pfa.walk_probability(pattern) > 0.0

    def test_restart_patterns_runs_multiple_rounds(self):
        result = run_adaptive_test(
            PTestConfig(
                pattern_count=2,
                pattern_size=4,
                seed=3,
                max_ticks=3000,
                restart_patterns=True,
            )
        )
        assert result.rounds > 1

    def test_pattern_count_cannot_exceed_task_limit(self):
        with pytest.raises(ConfigError):
            PTestConfig(pattern_count=17)

    def test_merged_override_replays_exact_pattern(self):
        patterns = [TestPattern(pattern_id=0, symbols=("TC", "TD"))]
        merged = PatternMerger(op="round_robin").merge(patterns)
        config = PTestConfig(pattern_count=1, pattern_size=2, max_ticks=2000)
        result = AdaptiveTest(config=config, merged_override=merged).run()
        assert result.merged_length == 2
        assert result.patterns == [("TC", "TD")]

    def test_bug_report_reproduces(self):
        from repro.workloads.scenarios import philosophers_case2

        first = philosophers_case2(seed=4).run()
        assert first.found_bug
        second = philosophers_case2(seed=4).run()
        assert second.found_bug
        assert (
            first.report.primary.kind is second.report.primary.kind
        )
        assert first.report.primary.detected_at == second.report.primary.detected_at

    def test_summary_mentions_anomaly(self):
        from repro.workloads.scenarios import philosophers_case2

        result = philosophers_case2(seed=0).run()
        assert "deadlock" in result.summary()
