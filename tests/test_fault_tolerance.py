"""Tests for the fault-tolerant campaign fabric.

Covers the deterministic chaos harness (:mod:`repro.ptest.chaos`), the
executor's watchdog timeouts, poison-cell quarantine via bisection, and
the partial-result accounting the campaign layers surface.  The load-
bearing invariant throughout: cells that complete produce bit-identical
rows/detections at any ``(workers, batch_size, chaos on/off)``
configuration, and quarantined cells are reported identically at every
configuration that isolates them.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ChaosInjectedError, ConfigError, WatchdogTimeout
from repro.ptest.adaptive import AdaptiveCampaign, Repeat
from repro.ptest.campaign import Campaign
from repro.ptest.chaos import CHAOS_EXIT_STATUS, ChaosSpec, transient_decisions
from repro.ptest.executor import CellExecutor, CollectSink, WorkCell
from repro.ptest.pool import WorkerPool, shutdown_pools
from repro.workloads.registry import scenario_ref


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    """Every test starts and ends without lingering shared pools."""
    shutdown_pools()
    yield
    shutdown_pools()


def _spin_campaign(seeds=(0, 1, 2, 3, 4, 5), **kwargs) -> Campaign:
    campaign = Campaign(seeds=tuple(seeds), **kwargs)
    campaign.add_scenario("spin", "clean_spin", tasks=2, total_steps=40)
    return campaign


def _sig(rows):
    return [
        (
            row.variant,
            row.runs,
            row.detections,
            row.kinds,
            row.mean_ticks_to_detection,
            row.mean_commands,
        )
        for row in rows
    ]


class _RaisesInRun:
    def __init__(self, seed: int):
        self.seed = seed

    def run(self) -> None:
        raise ValueError(f"cell {self.seed} is unrunnable")


def _raising_builder(seed: int) -> _RaisesInRun:
    return _RaisesInRun(seed)


class _RaisesOnSeeds:
    def __init__(self, bad: tuple[int, ...], seed: int):
        self.bad = bad
        self.seed = seed

    def run(self):
        if self.seed in self.bad:
            raise ValueError(f"cell {self.seed} is unrunnable")
        from repro.workloads.registry import build_scenario

        return build_scenario("clean_spin", self.seed, tasks=2, total_steps=40).run()


def _mixed_builder(bad: tuple[int, ...], seed: int) -> _RaisesOnSeeds:
    return _RaisesOnSeeds(bad, seed)


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ConfigError, match="kill_rate"):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ConfigError, match="hang_s"):
            ChaosSpec(hang_s=0)

    def test_seed_sets_coerced_and_picklable(self):
        spec = ChaosSpec(kill_seeds={1, 2}, raise_seeds=[3])
        assert spec.kill_seeds == frozenset({1, 2})
        assert isinstance(spec.raise_seeds, frozenset)
        assert spec.has_poison
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert CHAOS_EXIT_STATUS != 1  # distinguishable from real crashes

    def test_transient_decisions_deterministic_and_attempt_keyed(self):
        spec = ChaosSpec(seed=3, kill_rate=0.5, hang_rate=0.5, delay_rate=0.5)
        jobs = ((0, 0), (0, 1))
        first = transient_decisions(spec, 0, jobs)
        assert transient_decisions(spec, 0, jobs) == first
        # Some attempt draws a different fate — that is what makes an
        # injected kill transient rather than a forever-poison batch.
        assert any(
            transient_decisions(spec, attempt, jobs) != first
            for attempt in range(1, 8)
        )

    def test_rate_extremes(self):
        always = ChaosSpec(kill_rate=1.0)
        never = ChaosSpec()
        jobs = ((0, 7),)
        assert transient_decisions(always, 0, jobs)[0] is True
        assert transient_decisions(never, 0, jobs) == (False, False, False)

    def test_describe_names_the_faults(self):
        spec = ChaosSpec(seed=9, kill_rate=0.25, hang_seeds={4})
        text = spec.describe()
        assert "kill_rate=0.25" in text and "hang_seeds=[4]" in text


class TestTransientRecovery:
    def test_injected_kills_leave_rows_bit_identical(self):
        clean = _sig(_spin_campaign(workers=2).run())
        for batch_size in (None, 1):
            chaos = _spin_campaign(
                workers=2,
                batch_size=batch_size,
                chaos=ChaosSpec(seed=7, kill_rate=0.3),
                cell_timeout=60.0,
            )
            assert _sig(chaos.run()) == clean, f"batch_size={batch_size}"

    def test_injected_delays_leave_rows_bit_identical(self):
        clean = _sig(_spin_campaign(workers=2).run())
        chaos = _spin_campaign(
            workers=2,
            chaos=ChaosSpec(seed=11, delay_rate=0.5, delay_s=0.005),
        )
        assert _sig(chaos.run()) == clean

    def test_injected_hangs_recovered_by_watchdog(self):
        # Transient hangs re-draw per attempt, so the watchdog's
        # kill-and-resubmit converges to the clean rows.
        clean = _sig(_spin_campaign(seeds=(0, 1, 2, 3), workers=2).run())
        chaos = _spin_campaign(
            seeds=(0, 1, 2, 3),
            workers=2,
            batch_size=1,
            chaos=ChaosSpec(seed=5, hang_rate=0.35, hang_s=20.0),
            cell_timeout=0.8,
        )
        assert _sig(chaos.run()) == clean

    def test_mixed_fault_soup_still_bit_identical(self):
        clean = _sig(_spin_campaign(seeds=(0, 1, 2, 3), workers=2).run())
        chaos = _spin_campaign(
            seeds=(0, 1, 2, 3),
            workers=2,
            batch_size=1,
            chaos=ChaosSpec(
                seed=13,
                kill_rate=0.2,
                hang_rate=0.2,
                delay_rate=0.3,
                delay_s=0.002,
                hang_s=20.0,
            ),
            cell_timeout=0.8,
        )
        assert _sig(chaos.run()) == clean


class TestPoisonQuarantine:
    POISON = frozenset({2, 4})

    def _reference_rows(self):
        """Clean rows over exactly the seeds that survive quarantine."""
        survivors = tuple(s for s in range(6) if s not in self.POISON)
        return _sig(_spin_campaign(seeds=survivors, workers=2).run())

    def test_raise_poison_quarantined_identically_across_configs(self):
        reference = self._reference_rows()
        reports = []
        for workers, batch_size in ((2, None), (2, 1), (2, 3)):
            campaign = _spin_campaign(
                workers=workers,
                batch_size=batch_size,
                chaos=ChaosSpec(seed=1, raise_seeds=self.POISON),
                quarantine=True,
                cell_timeout=60.0,
            )
            rows = campaign.run()
            assert _sig(rows) == reference, (workers, batch_size)
            report = campaign.last_quarantine
            assert report.attempted == 6 and report.completed == 4
            reports.append(
                tuple((c.variant, c.seed, c.kind, c.detail) for c in report.cells)
            )
        # The invariant: identical quarantine accounting — cells, kinds
        # and detail strings — at every configuration.
        assert len(set(reports)) == 1
        assert {(c[1], c[2]) for c in reports[0]} == {
            (2, "lethal"),
            (4, "lethal"),
        }

    def test_kill_poison_quarantined_as_crash(self):
        campaign = _spin_campaign(
            workers=2,
            chaos=ChaosSpec(seed=1, kill_seeds=frozenset({3})),
            quarantine=True,
            cell_timeout=60.0,
        )
        rows = campaign.run()
        report = campaign.last_quarantine
        assert [(c.seed, c.kind) for c in report.cells] == [(3, "crash")]
        assert report.cells[0].detail == "worker process died"
        assert rows[0].runs == 5
        assert _sig(rows) == _sig(
            _spin_campaign(seeds=(0, 1, 2, 4, 5), workers=2).run()
        )

    def test_hang_poison_quarantined_as_timeout(self):
        campaign = _spin_campaign(
            workers=2,
            chaos=ChaosSpec(seed=1, hang_seeds=frozenset({1}), hang_s=25.0),
            quarantine=True,
            cell_timeout=0.8,
        )
        rows = campaign.run()
        report = campaign.last_quarantine
        assert [(c.seed, c.kind) for c in report.cells] == [(1, "timeout")]
        assert "0.8" in report.cells[0].detail
        assert rows[0].runs == 5

    def test_poison_propagates_with_quarantine_off(self):
        campaign = _spin_campaign(
            workers=2,
            chaos=ChaosSpec(seed=1, raise_seeds=frozenset({2})),
        )
        with pytest.raises(ChaosInjectedError):
            campaign.run()

    def test_serial_and_parallel_quarantine_reports_agree(self):
        # The serial path quarantines raising cells with the same kind
        # and the same config-independent detail strings the parallel
        # bisection produces.
        bad = (1, 3)
        cells = [WorkCell(variant="mixed", seed=seed) for seed in range(5)]
        from functools import partial

        builders = {"mixed": partial(_mixed_builder, bad)}
        serial = CellExecutor(workers=1, quarantine=True)
        serial_results = serial.run_cells(builders, cells)
        with WorkerPool(2) as pool:
            parallel = CellExecutor(workers=2, pool=pool, batch_size=2, quarantine=True)
            parallel_results = parallel.run_cells(builders, cells)
        serial_cells = [
            (c.variant, c.seed, c.kind, c.detail)
            for c in serial.last_quarantine.cells
        ]
        parallel_cells = [
            (c.variant, c.seed, c.kind, c.detail)
            for c in parallel.last_quarantine.cells
        ]
        assert serial_cells == parallel_cells
        assert {c[1] for c in serial_cells} == set(bad)
        assert all(c[2] == "lethal" for c in serial_cells)
        # Positional alignment: quarantined slots hold None, survivors
        # hold equal results on both paths.
        assert [r is None for r in serial_results] == [
            seed in bad for seed in range(5)
        ]
        assert [r is None for r in parallel_results] == [
            r is None for r in serial_results
        ]
        serial_ticks = [r.ticks for r in serial_results if r is not None]
        parallel_ticks = [r.ticks for r in parallel_results if r is not None]
        assert serial_ticks == parallel_ticks

    def test_sink_never_sees_quarantined_cells(self):
        sink = CollectSink()
        campaign_cells = [
            WorkCell(variant="bad", seed=seed) for seed in range(4)
        ]
        executor = CellExecutor(workers=1, quarantine=True)
        returned = executor.run_cells(
            {"bad": _raising_builder}, campaign_cells, sink=sink
        )
        assert returned is None
        assert sink.cells == []
        assert executor.last_quarantine.quarantined == 4
        assert executor.last_quarantine.completed == 0

    def test_clean_quarantine_run_reports_explicit_zero(self):
        campaign = _spin_campaign(workers=2, quarantine=True)
        clean = _sig(_spin_campaign(workers=2).run())
        assert _sig(campaign.run()) == clean  # quarantine on is free
        report = campaign.last_quarantine
        assert report.quarantined == 0 and report.completed == 6
        assert report.describe() == "quarantine: 0 of 6 cells"


class TestWatchdog:
    def test_hang_without_quarantine_raises_watchdog_timeout(self):
        campaign = _spin_campaign(
            workers=2,
            chaos=ChaosSpec(seed=1, hang_seeds=frozenset({1}), hang_s=25.0),
            cell_timeout=0.5,
        )
        with pytest.raises(WatchdogTimeout, match="quarantine=True"):
            campaign.run()

    def test_timeouts_detected_telemetry(self):
        executor = CellExecutor(
            workers=2,
            batch_size=1,
            chaos=ChaosSpec(seed=1, hang_seeds=frozenset({0}), hang_s=25.0),
            cell_timeout=0.8,
            quarantine=True,
        )
        ref = scenario_ref("clean_spin", tasks=2, total_steps=40)
        cells = [WorkCell(variant="spin", seed=seed) for seed in range(3)]
        executor.run_cells({"spin": ref}, cells)
        # Main drain + at least one screening attempt saw the hang.
        assert executor.timeouts_detected >= 2

    def test_cell_timeout_validated(self):
        executor = CellExecutor(workers=1, cell_timeout=0.0)
        with pytest.raises(ValueError, match="cell_timeout"):
            executor.run_cells({}, [])

    def test_no_deadline_means_no_watchdog(self):
        # cell_timeout=None is the pre-watchdog behaviour: futures are
        # waited on without a deadline (nothing here to hang on).
        campaign = _spin_campaign(workers=2)
        assert campaign.cell_timeout is None
        assert campaign.run()[0].runs == 6


class TestAdaptiveQuarantine:
    def test_rounds_carry_quarantine_reports(self):
        campaign = AdaptiveCampaign(
            seeds=(0, 1, 2, 3),
            rounds=2,
            policy=Repeat(),
            workers=2,
            quarantine=True,
            cell_timeout=60.0,
            chaos=ChaosSpec(seed=1, raise_seeds=frozenset({2})),
        )
        campaign.add_scenario("spin", "clean_spin", tasks=2, total_steps=40)
        result = campaign.run()
        assert len(result.rounds) == 2
        for observation in result.rounds:
            assert observation.quarantine is not None
            quarantined = observation.quarantine.cells
            assert [(c.seed, c.kind) for c in quarantined] == [(2, "lethal")]
            assert observation.rows[0].runs == 3
        assert result.total_quarantined == 2  # one per round
        assert "quarantine" in result.describe()
