"""Tests for the workload programs and the Fig. 1 example."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.services import ServiceRequest
from repro.pcore.tcb import TaskState
from repro.sim.memory import SharedMemory
from repro.workloads.fig1 import run_fig1
from repro.workloads.philosophers import fork_names, make_philosopher_program
from repro.workloads.producer_consumer import (
    ITEMS_SEM,
    SPACE_SEM,
    make_consumer_program,
    make_producer_program,
)
from repro.workloads.quicksort import (
    QSORT_ELEMENTS,
    make_quicksort_program,
    quicksort_steps,
)
from repro.workloads.readers_writers import (
    COUNTER_ADDR,
    make_reader_program,
    make_writer_program,
)

from repro.pcore.testkit import create_task


def fresh_kernel() -> PCoreKernel:
    return PCoreKernel(
        config=KernelConfig(), shared_memory=SharedMemory(size=64 * 1024)
    )


def run_until_empty(kernel: PCoreKernel, max_ticks: int) -> int:
    for tick in range(max_ticks):
        kernel.step(tick)
        if not kernel.tasks and not kernel.inbox:
            return tick
    return max_ticks


class TestQuicksortSteps:
    def test_sorts_correctly(self):
        data = [5, 3, 8, 1, 9, 2, 7]
        sorter = quicksort_steps(data)
        result = None
        while True:
            try:
                next(sorter)
            except StopIteration as stop:
                result = stop.value
                break
        assert result == sorted(data)

    def test_handles_duplicates_and_sorted_input(self):
        for data in ([2, 2, 2, 1], list(range(20)), list(range(20, 0, -1)), [7]):
            sorter = quicksort_steps(data)
            while True:
                try:
                    next(sorter)
                except StopIteration as stop:
                    assert stop.value == sorted(data)
                    break

    def test_yields_partition_costs(self):
        costs = list(_drain_costs(quicksort_steps([3, 1, 2])))
        assert all(cost >= 1 for cost in costs)


def _drain_costs(sorter):
    while True:
        try:
            yield next(sorter)
        except StopIteration:
            return


class TestQuicksortProgram:
    def test_runs_to_completion_in_kernel(self):
        kernel = fresh_kernel()
        kernel.register_program("qsort", make_quicksort_program(elements=32))
        tid = create_task(kernel, priority=1, program="qsort").value
        run_until_empty(kernel, max_ticks=5000)
        assert tid not in kernel.tasks  # sorted, verified, exited

    def test_sixteen_tasks_sort_concurrently(self):
        kernel = fresh_kernel()
        kernel.register_program(
            "qsort", make_quicksort_program(elements=QSORT_ELEMENTS)
        )
        for index in range(16):
            assert create_task(kernel, priority=index + 1, program="qsort").ok
        final = run_until_empty(kernel, max_ticks=60_000)
        assert final < 60_000  # all finished
        assert not kernel.is_halted()

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            make_quicksort_program(elements=0)
        with pytest.raises(ReproError):
            make_quicksort_program(compute_scale=0)


class TestPhilosophers:
    def test_fork_names(self):
        assert fork_names(3) == ["fork0", "fork1", "fork2"]

    def test_single_philosopher_eats_alone(self):
        kernel = fresh_kernel()
        kernel.register_program(
            "phil", make_philosopher_program(0, count=3, meals=2, hold_steps=3)
        )
        tid = create_task(kernel, priority=1, program="phil").value
        run_until_empty(kernel, max_ticks=2000)
        assert tid not in kernel.tasks

    def test_uncontended_trio_with_ordered_acquisition(self):
        kernel = fresh_kernel()
        for seat in range(3):
            kernel.register_program(
                f"phil{seat}",
                make_philosopher_program(
                    seat, count=3, meals=2, hold_steps=3, ordered=True
                ),
            )
            create_task(kernel, priority=seat + 1, program=f"phil{seat}")
        final = run_until_empty(kernel, max_ticks=5000)
        assert final < 5000
        assert not kernel.is_halted()

    def test_seat_validation(self):
        with pytest.raises(ReproError):
            make_philosopher_program(5, count=3)
        with pytest.raises(ReproError):
            make_philosopher_program(0, count=1)


class TestProducerConsumer:
    def _setup(self, kernel, ring_slots=4):
        kernel.add_semaphore(ITEMS_SEM, 0)
        kernel.add_semaphore(SPACE_SEM, ring_slots)

    def test_fifo_transfer(self):
        kernel = fresh_kernel()
        self._setup(kernel)
        kernel.register_program("prod", make_producer_program(10, ring_slots=4))
        kernel.register_program("cons", make_consumer_program(10, ring_slots=4))
        create_task(kernel, priority=2, program="prod")
        consumer = create_task(kernel, priority=1, program="cons").value
        final = run_until_empty(kernel, max_ticks=5000)
        assert final < 5000  # both exited: order verified inside consumer

    def test_faulty_producer_strands_consumer(self):
        kernel = fresh_kernel()
        self._setup(kernel)
        kernel.register_program(
            "prod", make_producer_program(8, ring_slots=4, faulty=True)
        )
        kernel.register_program("cons", make_consumer_program(8, ring_slots=4))
        create_task(kernel, priority=2, program="prod")
        consumer = create_task(kernel, priority=1, program="cons").value
        for tick in range(5000):
            kernel.step(tick)
        assert consumer in kernel.tasks
        assert kernel.tasks[consumer].state is TaskState.BLOCKED


class TestReadersWriters:
    def test_counter_increments_monotonically(self):
        kernel = fresh_kernel()
        kernel.register_program("writer", make_writer_program(5))
        kernel.register_program("reader", make_reader_program(5))
        create_task(kernel, priority=2, program="writer")
        create_task(kernel, priority=1, program="reader")
        final = run_until_empty(kernel, max_ticks=5000)
        assert final < 5000
        assert kernel.shared_memory.read_u16(COUNTER_ADDR) == 5


class TestFig1:
    def test_good_order_terminates_with_all_states(self):
        result = run_fig1("good")
        assert result.terminated
        assert result.s1_exited and result.s2_exited
        assert result.unreachable == frozenset()
        assert {"a", "d", "e", "f", "i", "j"} <= result.reached

    def test_bad_order_wedges_with_unreachable_states(self):
        result = run_fig1("bad")
        assert result.wedged
        # The paper: "The state d, e, i, j are unreachable."
        assert {"d", "e", "i", "j"} <= result.unreachable
        assert not result.s1_exited
        assert not result.s2_exited

    def test_bad_order_flags_an_anomaly(self):
        result = run_fig1("bad")
        assert result.anomalies
        kinds = {a.kind.value for a in result.anomalies}
        assert "starvation" in kinds

    def test_good_order_flags_nothing(self):
        result = run_fig1("good")
        assert result.anomalies == []

    def test_runs_are_deterministic(self):
        first = run_fig1("bad")
        second = run_fig1("bad")
        assert first.ticks == second.ticks
        assert first.reached == second.reached
