"""Tests for pattern sampling (Algorithm 2's walk) and trace learning."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.automata.dfa import nfa_to_dfa
from repro.automata.learn import TraceCounter, estimate_distribution
from repro.automata.nfa import regex_to_nfa
from repro.automata.pfa import pfa_from_regex
from repro.automata.regex_parser import parse_regex
from repro.automata.sampling import PatternSampler, sample_pattern
from repro.errors import SamplingError


class TestSampler:
    def test_deterministic_under_seed(self, fig3_pfa):
        first = PatternSampler(fig3_pfa, seed=42).sample(6)
        second = PatternSampler(fig3_pfa, seed=42).sample(6)
        assert first == second

    def test_different_seeds_differ_somewhere(self, fig3_pfa):
        samples = {
            PatternSampler(fig3_pfa, seed=seed).sample(6).symbols
            for seed in range(20)
        }
        assert len(samples) > 1

    def test_walk_stays_in_language_prefixes(self, fig3_pfa):
        for seed in range(50):
            sampled = PatternSampler(fig3_pfa, seed=seed).sample(8)
            assert fig3_pfa.walk_probability(sampled.symbols) > 0.0

    def test_stop_mode_ends_at_absorbing(self, fig3_pfa):
        for seed in range(30):
            sampled = PatternSampler(fig3_pfa, seed=seed, on_final="stop").sample(50)
            # Walks end with b or d (the arcs into the absorbing state).
            assert sampled.symbols[-1] in {"b", "d"}
            assert sampled.restarts == 0

    def test_restart_mode_fills_requested_size(self, fig3_pfa):
        sampled = PatternSampler(fig3_pfa, seed=1, on_final="restart").sample(40)
        assert len(sampled.symbols) == 40
        assert sampled.restarts > 0

    def test_log_probability_matches_walk(self, fig3_pfa):
        sampled = PatternSampler(fig3_pfa, seed=5).sample(10)
        walk = fig3_pfa.walk_probability(sampled.symbols)
        assert sampled.log_probability == pytest.approx(math.log(walk))

    def test_states_track_symbols(self, fig3_pfa):
        sampled = PatternSampler(fig3_pfa, seed=3).sample(10)
        assert len(sampled.states) == len(sampled.symbols) + 1
        assert sampled.states[0] == fig3_pfa.start

    def test_empirical_frequencies_match_probabilities(self, fig3_pfa):
        # First symbol is a with p=0.6, b with p=0.4.
        counts = Counter(
            PatternSampler(fig3_pfa, seed=seed).sample(1).symbols[0]
            for seed in range(2000)
        )
        assert counts["a"] / 2000 == pytest.approx(0.6, abs=0.05)
        assert counts["b"] / 2000 == pytest.approx(0.4, abs=0.05)

    def test_size_validation(self, fig3_pfa):
        with pytest.raises(SamplingError):
            PatternSampler(fig3_pfa, seed=0).sample(0)

    def test_bad_mode_rejected(self, fig3_pfa):
        with pytest.raises(SamplingError):
            PatternSampler(fig3_pfa, on_final="explode")

    def test_sample_many_counts(self, fig3_pfa):
        sampler = PatternSampler(fig3_pfa, seed=0)
        batch = sampler.sample_many(7, 4)
        assert len(batch) == 7

    def test_sample_to_final_reaches_accept(self, fig3_pfa):
        sampled = PatternSampler(fig3_pfa, seed=9).sample_to_final()
        assert fig3_pfa.word_probability(sampled.symbols) > 0.0

    def test_sample_to_final_bounds(self):
        # a* with a single self-loop never reaches a final absorbing state.
        pfa = pfa_from_regex("a+ b")
        # force pathological: remove is not possible; instead use max_size=1
        sampler = PatternSampler(pfa, seed=0)
        with pytest.raises(SamplingError):
            sampler.sample_to_final(max_size=0)

    def test_one_shot_helper(self, fig3_pfa):
        assert sample_pattern(fig3_pfa, 4, seed=11).symbols


class TestLearning:
    def _dfa(self):
        return nfa_to_dfa(regex_to_nfa(parse_regex("(a c* d) | b")))

    def test_counts_follow_traces(self):
        dfa = self._dfa()
        counter = TraceCounter(dfa)
        accepted = counter.observe_many(
            [["a", "d"], ["a", "c", "d"], ["b"], ["a", "d"]]
        )
        assert accepted == 4
        assert counter.counts[(dfa.start, "a")] == 3
        assert counter.counts[(dfa.start, "b")] == 1

    def test_rejected_traces_counted(self):
        dfa = self._dfa()
        counter = TraceCounter(dfa)
        assert not counter.observe(["d"])
        assert counter.rejected == 1

    def test_estimated_distribution_is_stochastic(self):
        dfa = self._dfa()
        dist = estimate_distribution(
            dfa, [["a", "d"], ["a", "c", "d"], ["b"]], smoothing=1.0
        )
        for state, arcs in dfa.transitions.items():
            total = sum(dist.get(state, symbol) for symbol in arcs)
            assert total == pytest.approx(1.0)

    def test_smoothing_keeps_unseen_transitions_alive(self):
        dfa = self._dfa()
        dist = estimate_distribution(dfa, [["b"]] * 10, smoothing=1.0)
        assert dist.get(dfa.start, "a") > 0.0

    def test_zero_smoothing_reflects_counts_exactly(self):
        dfa = self._dfa()
        dist = estimate_distribution(
            dfa, [["a", "d"], ["a", "d"], ["b"], ["b"]], smoothing=0.0
        )
        assert dist.get(dfa.start, "a") == pytest.approx(0.5)

    def test_learned_distribution_usable_for_building(self):
        from repro.automata.pfa import build_pfa

        dfa = self._dfa()
        dist = estimate_distribution(dfa, [["a", "c", "d"], ["b"]])
        pfa = build_pfa(dfa, dist)
        assert pfa.accepts_word(("b",))

    def test_negative_smoothing_rejected(self):
        dfa = self._dfa()
        counter = TraceCounter(dfa)
        with pytest.raises(Exception):
            counter.to_distribution(smoothing=-1.0)
