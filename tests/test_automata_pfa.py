"""Tests for the PFA (Definition 1), distributions and construction."""

from __future__ import annotations

import math

import pytest

from repro.automata.dfa import nfa_to_dfa
from repro.automata.distributions import (
    TransitionDistribution,
    normalize_weights,
    uniform_distribution,
    validate_distribution,
)
from repro.automata.nfa import regex_to_nfa
from repro.automata.pfa import PFA, Transition, build_pfa, pfa_from_regex
from repro.automata.regex_parser import parse_regex
from repro.errors import AutomatonError, DistributionError


class TestTransition:
    def test_probability_bounds(self):
        with pytest.raises(AutomatonError):
            Transition(source=0, symbol="a", target=1, probability=0.0)
        with pytest.raises(AutomatonError):
            Transition(source=0, symbol="a", target=1, probability=1.5)
        Transition(source=0, symbol="a", target=1, probability=1.0)  # ok


class TestDistributionHelpers:
    def test_normalize_weights(self):
        row = normalize_weights({"a": 3.0, "b": 1.0})
        assert row == {"a": 0.75, "b": 0.25}

    def test_normalize_rejects_negative(self):
        with pytest.raises(DistributionError):
            normalize_weights({"a": -1.0})

    def test_normalize_rejects_zero_total(self):
        with pytest.raises(DistributionError):
            normalize_weights({"a": 0.0})

    def test_uniform_distribution(self):
        dist = uniform_distribution([(0, "a"), (0, "b"), (1, "c")])
        assert dist.get(0, "a") == pytest.approx(0.5)
        assert dist.get(0, "b") == pytest.approx(0.5)
        assert dist.get(1, "c") == pytest.approx(1.0)

    def test_transition_distribution_rejects_bad_weight(self):
        dist = TransitionDistribution()
        with pytest.raises(DistributionError):
            dist.set(0, "a", -0.1)
        with pytest.raises(DistributionError):
            dist.set(0, "a", math.inf)

    def test_normalized_drops_zero_rows(self):
        dist = TransitionDistribution()
        dist.set(0, "a", 0.0)
        assert dist.normalized().row(0) == {}

    def test_validate_detects_phantom_transition(self):
        dist = TransitionDistribution()
        dist.set(0, "z", 1.0)
        with pytest.raises(DistributionError):
            validate_distribution(dist, {0: ["a"]})

    def test_validate_detects_bad_row_sum(self):
        dist = TransitionDistribution()
        dist.set(0, "a", 0.5)
        dist.set(0, "b", 0.3)
        with pytest.raises(DistributionError):
            validate_distribution(dist, {0: ["a", "b"]})

    def test_validate_allows_absorbing_states(self):
        validate_distribution(TransitionDistribution(), {0: []})


class TestPFAStructure:
    def test_eq1_stochasticity_enforced(self):
        transitions = {
            0: {
                "a": Transition(source=0, symbol="a", target=0, probability=0.5),
            }
        }
        with pytest.raises(DistributionError):
            PFA(
                num_states=1,
                alphabet=frozenset("a"),
                transitions=transitions,
                start=0,
                accepts=frozenset({0}),
            )

    def test_fig3_probabilities(self, fig3_pfa):
        # Word probabilities from the paper's example automaton.
        assert fig3_pfa.word_probability(("b",)) == pytest.approx(0.4)
        assert fig3_pfa.word_probability(("a", "d")) == pytest.approx(0.42)
        assert fig3_pfa.word_probability(("a", "c", "d")) == pytest.approx(
            0.6 * 0.3 * 0.7
        )
        assert fig3_pfa.word_probability(("a",)) == 0.0  # ends non-final
        assert fig3_pfa.word_probability(("b", "b")) == 0.0

    def test_fig3_total_mass_sums_to_one(self, fig3_pfa):
        # sum over n of P(a c^n d) plus P(b) must equal 1.
        total = fig3_pfa.word_probability(("b",))
        for repeats in range(60):
            word = ("a",) + ("c",) * repeats + ("d",)
            total += fig3_pfa.word_probability(word)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_walk_probability_counts_prefixes(self, fig3_pfa):
        assert fig3_pfa.walk_probability(("a",)) == pytest.approx(0.6)
        assert fig3_pfa.walk_probability(("a", "c")) == pytest.approx(0.18)

    def test_has_probabilistic_choice(self, fig3_pfa):
        assert fig3_pfa.has_probabilistic_choice(0)
        assert fig3_pfa.has_probabilistic_choice(1)
        assert not fig3_pfa.has_probabilistic_choice(2)

    def test_absorbing_and_final(self, fig3_pfa):
        assert fig3_pfa.is_absorbing(2)
        assert fig3_pfa.is_final(2)
        assert not fig3_pfa.is_absorbing(0)

    def test_labels(self, fig3_pfa):
        assert fig3_pfa.label(1) == "q1"
        assert fig3_pfa.label(0) == "q0"

    def test_to_dot_mentions_all_transitions(self, fig3_pfa):
        dot = fig3_pfa.to_dot()
        assert "a (0.6)" in dot
        assert "d (0.7)" in dot
        assert "doublecircle" in dot


class TestBuildPFA:
    def test_uniform_fallback(self):
        pfa = pfa_from_regex("(a c* d) | b")
        row = pfa.outgoing(pfa.start)
        assert [t.probability for t in row] == pytest.approx([0.5, 0.5])

    def test_partial_distribution_uses_uniform_elsewhere(self):
        dfa = nfa_to_dfa(regex_to_nfa(parse_regex("(a c* d) | b")))
        dist = TransitionDistribution()
        dist.set(dfa.start, "a", 0.9)
        dist.set(dfa.start, "b", 0.1)
        pfa = build_pfa(dfa, dist)
        by_symbol = {t.symbol: t.probability for t in pfa.outgoing(pfa.start)}
        assert by_symbol["a"] == pytest.approx(0.9)
        assert by_symbol["b"] == pytest.approx(0.1)
        middle = dfa.step(dfa.start, "a")
        inner = {t.symbol: t.probability for t in pfa.outgoing(middle)}
        assert inner["c"] == pytest.approx(0.5)
        assert inner["d"] == pytest.approx(0.5)

    def test_distribution_weights_are_normalised(self):
        dfa = nfa_to_dfa(regex_to_nfa(parse_regex("a | b")))
        dist = TransitionDistribution()
        dist.set(dfa.start, "a", 3.0)
        dist.set(dfa.start, "b", 1.0)
        pfa = build_pfa(dfa, dist)
        by_symbol = {t.symbol: t.probability for t in pfa.outgoing(pfa.start)}
        assert by_symbol["a"] == pytest.approx(0.75)

    def test_language_preserved_through_pipeline(self):
        pfa = pfa_from_regex("TC (TS TR)* (TD$ | TY$)", minimize=True)
        assert pfa.accepts_word(("TC", "TD"))
        assert pfa.accepts_word(("TC", "TS", "TR", "TY"))
        assert not pfa.accepts_word(("TC", "TS", "TD"))

    def test_minimize_false_keeps_structure(self):
        regex = "TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)"
        unmin = pfa_from_regex(regex, minimize=False)
        mini = pfa_from_regex(regex, minimize=True)
        assert unmin.num_states > mini.num_states
