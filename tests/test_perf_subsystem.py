"""Tests for the execution-speed subsystem: compiled sampling, the
parallel campaign executor, and incremental deadlock detection.

The compiled sampler must be *bit-for-bit* seed-compatible with the
legacy dict-walking sampler, and the incremental wait-for graph must
agree with the networkx rebuild the detector used to do on every
sweep; both frozen references live in
:mod:`repro.automata.reference`, shared with the perf bench.
"""

from __future__ import annotations

import math
import random
from functools import partial

import pytest

from repro.automata.compiled import CompiledPFA
from repro.automata.reference import legacy_sample, networkx_cycle_tids
from repro.automata.sampling import PatternSampler
from repro.errors import SamplingError
from repro.ptest.campaign import Campaign
from repro.ptest.executor import CellExecutor, WorkCell
from repro.ptest.detector import AnomalyKind
from repro.ptest.pcore_model import pcore_pfa
from repro.ptest.waitgraph import IncrementalWaitForGraph, find_cycle_edges
from repro.workloads.scenarios import philosophers_case2


# -- compiled sampling ---------------------------------------------------------


class TestCompiledPFA:
    def test_rows_mirror_outgoing(self, fig3_pfa):
        compiled = CompiledPFA.from_pfa(fig3_pfa)
        for state in range(fig3_pfa.num_states):
            arcs = fig3_pfa.outgoing(state)
            assert compiled.symbols[state] == tuple(a.symbol for a in arcs)
            assert compiled.targets[state] == tuple(a.target for a in arcs)
            count, *_rest = compiled.rows[state]
            assert count == len(arcs)

    def test_cumulative_rows_sum_to_one(self, fig3_pfa):
        compiled = CompiledPFA.from_pfa(fig3_pfa)
        for state in range(compiled.num_states):
            if compiled.cumulative[state]:
                assert compiled.cumulative[state][-1] == pytest.approx(1.0)

    def test_transition_shim_round_trips(self, fig3_pfa):
        compiled = CompiledPFA.from_pfa(fig3_pfa)
        for state in range(compiled.num_states):
            for index, arc in enumerate(fig3_pfa.outgoing(state)):
                assert compiled.transition(state, index) == arc

    def test_sampler_accepts_prebuilt_compiled(self, fig3_pfa):
        compiled = CompiledPFA.from_pfa(fig3_pfa)
        via_compiled = PatternSampler(compiled, seed=11).sample(12)
        via_pfa = PatternSampler(fig3_pfa, seed=11).sample(12)
        assert via_compiled == via_pfa


class TestSeededEquivalence:
    """Compiled sampling reproduces the legacy walk bit for bit."""

    @pytest.mark.parametrize("on_final", ["stop", "restart"])
    def test_fig3_equivalence(self, fig3_pfa, on_final):
        for seed in range(120):
            sampled = PatternSampler(
                fig3_pfa, seed=seed, on_final=on_final
            ).sample(30)
            reference = legacy_sample(fig3_pfa, seed, 30, on_final=on_final)
            assert (
                sampled.symbols,
                sampled.states,
                sampled.log_probability,
                sampled.restarts,
            ) == reference

    @pytest.mark.parametrize("on_final", ["stop", "restart"])
    def test_fig5_equivalence(self, on_final):
        pfa = pcore_pfa()
        for seed in range(120):
            sampled = PatternSampler(
                pfa, seed=seed, on_final=on_final
            ).sample(40)
            reference = legacy_sample(pfa, seed, 40, on_final=on_final)
            assert (
                sampled.symbols,
                sampled.states,
                sampled.log_probability,
                sampled.restarts,
            ) == reference

    def test_sample_many_shares_one_rng_stream(self):
        pfa = pcore_pfa()
        batch = PatternSampler(pfa, seed=5).sample_many(20, 10)
        rng_clone = random.Random(5)
        reference = []
        for _ in range(20):
            # Replay the same stream through the legacy walk.
            state_seed_rng = rng_clone  # shared stream, not reseeded
            symbols, states = [], [pfa.start]
            state = pfa.start
            while len(symbols) < 10 and pfa.transitions.get(state):
                arcs = [
                    pfa.transitions[state][s]
                    for s in sorted(pfa.transitions[state])
                ]
                if len(arcs) == 1:
                    transition = arcs[0]
                else:
                    pick = state_seed_rng.random()
                    cumulative = 0.0
                    transition = arcs[-1]
                    for candidate in arcs:
                        cumulative += candidate.probability
                        if pick < cumulative:
                            transition = candidate
                            break
                symbols.append(transition.symbol)
                state = transition.target
                states.append(state)
            reference.append(tuple(symbols))
        assert [p.symbols for p in batch] == reference

    def test_sample_to_final_matches_walk_probability(self):
        pfa = pcore_pfa()
        for seed in range(40):
            sampled = PatternSampler(pfa, seed=seed).sample_to_final()
            walk = pfa.walk_probability(sampled.symbols)
            assert sampled.log_probability == pytest.approx(math.log(walk))

    def test_absorbing_start_still_rejected(self, fig3_pfa):
        compiled = CompiledPFA.from_pfa(fig3_pfa)
        bad = object.__new__(CompiledPFA)
        # A compiled automaton whose start row is empty must be refused.
        object.__setattr__(bad, "source", fig3_pfa)
        object.__setattr__(bad, "num_states", 1)
        object.__setattr__(bad, "start", 0)
        object.__setattr__(bad, "symbols", ((),))
        object.__setattr__(bad, "targets", ((),))
        object.__setattr__(bad, "probabilities", ((),))
        object.__setattr__(bad, "cumulative", ((),))
        object.__setattr__(bad, "log_probs", ((),))
        object.__setattr__(bad, "rows", ((0, (), (), (), ()),))
        with pytest.raises(SamplingError):
            PatternSampler(bad, seed=0)
        assert compiled.is_absorbing(2)


# -- parallel campaigns --------------------------------------------------------


class TestCellExecutor:
    def test_unknown_variant_rejected(self):
        executor = CellExecutor(workers=1)
        with pytest.raises(KeyError):
            executor.run_cells({}, [WorkCell(variant="ghost", seed=0)])

    def test_serial_results_align_with_cells(self):
        builders = {"cyclic": partial(philosophers_case2, op="cyclic")}
        cells = [WorkCell(variant="cyclic", seed=s) for s in (0, 1)]
        results = CellExecutor(workers=1).run_cells(builders, cells)
        assert len(results) == 2
        assert all(r.found_bug for r in results)

    def test_lambda_builders_fall_back_to_serial(self):
        builders = {"lam": lambda seed: philosophers_case2(seed=seed)}
        cells = [WorkCell(variant="lam", seed=s) for s in (0, 1)]
        executor = CellExecutor(workers=4)
        assert not executor._portable(builders)
        with pytest.warns(RuntimeWarning, match="cannot be pickled"):
            results = executor.run_cells(builders, cells)
        assert executor.ran_parallel is False
        assert [r.found_bug for r in results] == [True, True]


class TestParallelCampaignDeterminism:
    def _campaign(self, workers):
        return Campaign(
            seeds=(0, 1, 2),
            variants={
                "cyclic": partial(philosophers_case2, op="cyclic"),
                "ordered": partial(philosophers_case2, ordered=True),
            },
            workers=workers,
        )

    def test_parallel_rows_equal_serial_rows(self):
        serial = self._campaign(workers=1)
        parallel = self._campaign(workers=2)
        serial_rows = serial.run()
        parallel_rows = parallel.run()
        assert serial_rows == parallel_rows
        # Per-run outcomes agree too, not just the summaries.
        for variant in serial.variants:
            serial_runs = serial.results[variant]
            parallel_runs = parallel.results[variant]
            assert [r.found_bug for r in serial_runs] == [
                r.found_bug for r in parallel_runs
            ]
            assert [r.ticks for r in serial_runs] == [
                r.ticks for r in parallel_runs
            ]
            assert [r.commands_issued for r in serial_runs] == [
                r.commands_issued for r in parallel_runs
            ]

    def test_run_workers_override(self):
        campaign = self._campaign(workers=1)
        rows = campaign.run(workers=2)
        assert rows[0].detections == 3


# -- incremental deadlock detection --------------------------------------------


class TestFindCycleEdges:
    def test_no_cycle(self):
        assert find_cycle_edges([(1, 2), (2, 3)]) is None

    def test_two_cycle(self):
        cycle = find_cycle_edges([(1, 2), (2, 1), (3, 1)])
        assert cycle == [(1, 2), (2, 1)]

    def test_deterministic_start(self):
        # Two disjoint cycles: the lowest-numbered one is returned.
        edges = [(7, 8), (8, 7), (2, 3), (3, 2)]
        assert find_cycle_edges(edges) == [(2, 3), (3, 2)]
        assert find_cycle_edges(list(reversed(edges))) == [(2, 3), (3, 2)]

    def test_agrees_with_networkx_on_random_graphs(self):
        rng = random.Random(123)
        for _ in range(60):
            edges = {
                (rng.randrange(8), rng.randrange(8)) for _ in range(10)
            }
            edges = [(u, v) for u, v in edges if u != v]
            ours = find_cycle_edges(edges)
            reference = networkx_cycle_tids(
                [(u, v, "r") for u, v in edges]
            )
            if reference is None:
                assert ours is None
            else:
                assert ours is not None
                # Same verdict; the specific cycle may differ when the
                # graph holds several.
                cycle_nodes = {u for u, _ in ours}
                assert cycle_nodes  # non-empty closed walk
                assert ours[0][0] == ours[-1][1]


class TestIncrementalWaitGraph:
    def test_sweeps_skip_when_versions_static(self):
        from repro.pcore.sync import KMutex

        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        mutex.try_acquire(2)  # 2 now waits on 1
        graph = IncrementalWaitForGraph()
        assert graph.refresh({"m": mutex}) is True
        searches_before = graph.searches
        graph.find_cycle()
        for _ in range(50):
            assert graph.refresh({"m": mutex}) is False
            graph.find_cycle()
        assert graph.searches == searches_before + 1
        assert graph.edges() == [(2, 1, "m")]

    def test_semaphores_contribute_no_edges(self):
        from repro.pcore.sync import KSemaphore

        semaphore = KSemaphore(name="s", count=0)
        semaphore.try_acquire(4)
        graph = IncrementalWaitForGraph()
        graph.refresh({"s": semaphore})
        assert graph.edges() == []

    def test_stale_resources_dropped(self):
        from repro.pcore.sync import KMutex

        mutex = KMutex(name="m")
        mutex.try_acquire(1)
        mutex.try_acquire(2)
        graph = IncrementalWaitForGraph()
        graph.refresh({"m": mutex})
        assert graph.edges()
        assert graph.refresh({}) is True
        assert graph.edges() == []
        assert graph.find_cycle() is None

    def test_versionless_resource_edges_tracked_and_dropped(self):
        class BareLock:  # duck-typed: owner/waiters but no version
            def __init__(self):
                self.owner = 1
                self.waiters = [2]

        graph = IncrementalWaitForGraph()
        assert graph.refresh({"bare": BareLock()}) is True
        assert graph.edges() == [(2, 1, "bare")]
        # Versionless rows re-derive every refresh instead of caching...
        assert graph.refresh({"bare": BareLock()}) is False
        # ...and do not leak once the resource disappears.
        assert graph.refresh({}) is True
        assert graph.edges() == []
        assert graph.find_cycle() is None

    def test_stale_version_cannot_mask_same_name_replacement(self):
        from repro.pcore.sync import KMutex

        # First life of "m": reaches version 3 with no wait-for edges.
        first = KMutex(name="m")
        first.try_acquire(1)
        first.release(1)
        first.try_acquire(1)
        assert first.version == 3 and not first.waiters
        graph = IncrementalWaitForGraph()
        graph.refresh({"m": first})
        graph.refresh({})  # resource vanishes; its version must go too
        # Second life of "m": same version number but with real edges.
        second = KMutex(name="m")
        second.try_acquire(2)
        second.try_acquire(3)
        second.try_acquire(4)
        assert second.version == first.version
        graph.refresh({"m": second})
        assert graph.edges() == [(3, 2, "m"), (4, 2, "m")]


class TestIncrementalDetectorEquivalence:
    def test_philosophers_deadlock_replay_is_stable(self):
        result = philosophers_case2(seed=0, op="cyclic").run()
        assert result.found_bug
        anomaly = result.report.primary
        assert anomaly.kind is AnomalyKind.DEADLOCK
        assert len(anomaly.tids) == 3  # all three philosophers
        assert len(set(anomaly.resources)) == 3  # over all three forks
        assert result.report.wait_for_dot  # the DOT dump still renders
        replay = philosophers_case2(seed=0, op="cyclic").run()
        assert replay.report.primary.tids == anomaly.tids
        assert replay.report.primary.resources == anomaly.resources

    def test_detector_cycle_equals_networkx_cycle(self, kernel):
        from repro.bridge.bridge import build_bridge
        from repro.pcore.programs import Acquire, Compute, Exit
        from repro.pcore.services import ServiceCode
        from repro.pcore.testkit import create_task, run_service
        from repro.ptest.detector import BugDetector, DetectorConfig
        from repro.sim.mailbox import MailboxBank

        def grab(first, second):
            def program(ctx):
                yield Acquire(first)
                yield Compute(30)
                yield Acquire(second)
                yield Exit(0)

            return program

        kernel.register_program("g1", grab("ra", "rb"))
        kernel.register_program("g2", grab("rb", "ra"))
        t1 = create_task(kernel, priority=1, program="g1").value
        t2 = create_task(kernel, priority=2, program="g2").value
        for tick in range(3):
            kernel.step(tick)
        run_service(kernel, ServiceCode.TS, target=t2)
        for tick in range(3, 40):
            kernel.step(tick)
        run_service(kernel, ServiceCode.TR, target=t2)
        for tick in range(40, 80):
            kernel.step(tick)

        bridge_master, _slave = build_bridge(MailboxBank.omap5912(), kernel)
        detector = BugDetector(
            kernel=kernel,
            bridge=bridge_master,
            config=DetectorConfig(deadlock_confirmations=1),
        )
        found = detector.sweep(100)
        assert [a.kind for a in found] == [AnomalyKind.DEADLOCK]
        reference = networkx_cycle_tids(kernel.wait_for_edges())
        assert found[0].tids == reference
        assert set(found[0].resources) == {"ra", "rb"}
