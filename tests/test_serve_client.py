"""Client/server round trip: ``repro serve`` + ``repro.client``.

The tentpole invariant, exercised end to end over real sockets: rows
and detections received through the server are **bit-identical** to a
direct :func:`~repro.ptest.spec.execute_spec` of the same spec, at any
combination of concurrent clients, workers and batch size.  Plus the
service contracts around it: admission control queues (never rejects),
structured error frames for config mistakes and malformed JSON, pool
reuse across requests, and graceful drain on shutdown.

The server runs in-process on a background thread, so dynamically
registered scenarios are visible to it and no subprocess orchestration
is needed; ``examples/serve_client.py`` covers the separate-process
flow.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.client import Client, ServerError
from repro.ptest.pool import shutdown_pools
from repro.ptest.spec import CampaignSpec, execute_spec
from repro.serve import start_server_thread
from repro.workloads.registry import REGISTRY, build_scenario


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    yield
    shutdown_pools()


@pytest.fixture()
def server():
    handle = start_server_thread()
    yield handle
    handle.close()


def _register(name, builder):
    """Register a test-local scenario; caller must pop it afterwards
    (the registry refuses silent replacement by design)."""
    REGISTRY.register(name, builder)
    return name


def _unregister(name):
    REGISTRY._specs.pop(name, None)
    REGISTRY.version += 1


PHIL_SPEC = CampaignSpec(
    scenario="philosophers",
    params=(("count", "2"),),
    grid=(("hold_steps", ("3", "5")),),
    seeds=(0, 1),
    workers=2,
    batch_size=2,
)


# -- bit-identity ------------------------------------------------------


def test_single_client_matches_direct_execution(server):
    direct = execute_spec(PHIL_SPEC)
    with Client(*server.address) as client:
        remote = client.run(PHIL_SPEC)
    assert remote.rounds == direct.rounds
    assert list(remote.rows) == list(direct.rows)
    assert remote.total_detections == direct.total_detections


def test_concurrent_clients_bit_identical(server):
    direct = execute_spec(PHIL_SPEC)
    results: list = [None] * 3
    errors: list = []

    def one(index: int) -> None:
        try:
            with Client(*server.address) as client:
                results[index] = client.run(PHIL_SPEC)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not errors
    for remote in results:
        assert remote is not None
        assert remote.rounds == direct.rounds


def test_serial_spec_bit_identical(server):
    spec = CampaignSpec(
        scenario="philosophers", params=(("count", "2"),), seeds=(0, 1)
    )
    direct = execute_spec(spec)
    with Client(*server.address) as client:
        remote = client.run(spec)
    assert remote.rounds == direct.rounds


def test_adapt_spec_bit_identical(server):
    spec = CampaignSpec(
        scenario="philosophers",
        mode="adapt",
        params=(("count", "2"),),
        grid=(("hold_steps", ("3", "5")),),
        seeds=(0, 1),
        policy="grid_zoom",
        rounds=2,
    )
    direct = execute_spec(spec)
    with Client(*server.address) as client:
        remote = client.run(spec)
    assert remote.rounds == direct.rounds
    assert remote.schedule == "policy=grid_zoom"
    assert remote.rounds_budget == direct.rounds_budget


def test_stream_cells_submission_order(server):
    with Client(*server.address) as client:
        remote = client.run(PHIL_SPEC, stream_cells=True)
    # One cell frame per (variant, seed), delivered in submission
    # order — the executor's determinism contract, preserved over the
    # socket even with workers=2 completing out of order.
    expected = [
        ("philosophers[hold_steps=3]", 0),
        ("philosophers[hold_steps=3]", 1),
        ("philosophers[hold_steps=5]", 0),
        ("philosophers[hold_steps=5]", 1),
    ]
    assert [(c.variant, c.seed) for c in remote.cells] == expected


# -- pool reuse --------------------------------------------------------


def test_one_pool_spawn_per_worker_count(server):
    with Client(*server.address) as client:
        client.run(PHIL_SPEC)
        client.run(PHIL_SPEC)
        status = client.status()
    pools = [p for p in status["pools"] if p["workers"] == 2]
    assert len(pools) == 1
    assert pools[0]["spawns"] == 1  # second request reused the pool


# -- admission control -------------------------------------------------


def test_admission_queues_instead_of_rejecting():
    name = _register(
        "serve_slow_spin",
        lambda seed: _Slow(build_scenario("clean_spin", seed, tasks=2)),
    )
    handle = start_server_thread(max_concurrent=1)
    try:
        slow = CampaignSpec(scenario="serve_slow_spin", seeds=(0,))
        first_accepted = threading.Event()
        first_done: list = []

        def occupy() -> None:
            with Client(*handle.address) as client:
                for frame in client.stream(slow):
                    if frame["type"] == "accepted":
                        first_accepted.set()
                    if frame["type"] == "done":
                        first_done.append(frame)

        thread = threading.Thread(target=occupy)
        thread.start()
        assert first_accepted.wait(30)
        with Client(*handle.address) as client:
            second = client.run(slow)
        thread.join(60)
        # The second request queued behind the busy slot — and still
        # completed; queueing is never rejection.
        assert second.queued is True
        assert second.rounds
        assert first_done
    finally:
        _unregister(name)
        handle.close()


class _Slow:
    """Wrap a scenario so each run holds its admission slot a while."""

    def __init__(self, inner):
        self.inner = inner

    def run(self):
        time.sleep(1.0)
        return self.inner.run()


# -- error frames ------------------------------------------------------


def test_unknown_scenario_is_config_error_frame(server):
    with Client(*server.address) as client:
        with pytest.raises(ServerError) as excinfo:
            client.run(CampaignSpec(scenario="no_such_scenario"))
        assert excinfo.value.kind == "config"
        assert excinfo.value.exit_code == 2
        # The connection survives a failed request.
        assert client.ping()


def test_invalid_spec_payload_is_config_error_frame(server):
    with Client(*server.address) as client:
        client._send(
            {
                "op": "run",
                "id": "x1",
                "spec": {"scenario": "philosophers", "workers": 0},
            }
        )
        frame = client._recv()
    assert frame["type"] == "error"
    assert frame["kind"] == "config"
    assert "workers" in frame["message"]


def test_malformed_json_keeps_connection_alive(server):
    with socket.create_connection(server.address, timeout=30) as sock:
        reader = sock.makefile("rb")
        sock.sendall(b"{this is not json\n")
        frame = json.loads(reader.readline())
        assert frame["type"] == "error"
        assert frame["kind"] == "protocol"
        # Same connection still serves well-formed requests.
        sock.sendall(json.dumps({"op": "ping", "id": "p1"}).encode() + b"\n")
        assert json.loads(reader.readline())["type"] == "pong"


def test_quarantined_cells_survive_the_wire(server):
    name = _register("serve_poison", lambda seed: _Poison(seed))
    try:
        spec = CampaignSpec(
            scenario="serve_poison", seeds=(0, 1, 2), quarantine=True
        )
        direct = execute_spec(spec)
        with Client(*server.address) as client:
            remote = client.run(spec)
        assert remote.rounds == direct.rounds
        assert remote.quarantine is not None
        assert [(c.seed, c.kind) for c in remote.quarantine.cells] == [
            (c.seed, c.kind) for c in direct.quarantine.cells
        ]
    finally:
        _unregister(name)


class _Poison:
    def __init__(self, seed):
        self.seed = seed

    def run(self):
        if self.seed == 1:
            raise RuntimeError("poison cell")
        return build_scenario("clean_spin", self.seed, tasks=2).run()


# -- shutdown ----------------------------------------------------------


def test_shutdown_drains_in_flight_requests():
    name = _register(
        "serve_slow_drain",
        lambda seed: _Slow(build_scenario("clean_spin", seed, tasks=2)),
    )
    handle = start_server_thread()
    try:
        slow = CampaignSpec(scenario="serve_slow_drain", seeds=(0,))
        outcome_box: list = []
        accepted = threading.Event()

        def run_one() -> None:
            with Client(*handle.address) as client:
                for frame in client.stream(slow):
                    if frame["type"] == "accepted":
                        accepted.set()
                    if frame["type"] == "done":
                        outcome_box.append(frame)

        thread = threading.Thread(target=run_one)
        thread.start()
        assert accepted.wait(30)
        with Client(*handle.address) as client:
            ack = client.shutdown_server()
        assert ack["type"] == "shutdown"
        thread.join(60)
        # In-flight request completed despite the drain...
        assert outcome_box and outcome_box[0]["rounds"] == 1
        # ...and the listener is now gone.
        handle.close()
        with pytest.raises(ServerError, match="cannot connect"):
            Client(
                *handle.address, connect_timeout=0.3
            ).ping()
    finally:
        _unregister(name)


def test_new_requests_rejected_while_draining():
    name = _register(
        "serve_slow_reject",
        lambda seed: _Slow(build_scenario("clean_spin", seed, tasks=2)),
    )
    handle = start_server_thread()
    try:
        slow = CampaignSpec(scenario="serve_slow_reject", seeds=(0,))
        accepted = threading.Event()
        thread = threading.Thread(
            target=lambda: [
                accepted.set()
                for frame in Client(*handle.address).stream(slow)
                if frame["type"] == "accepted"
            ]
        )
        thread.start()
        assert accepted.wait(30)
        with Client(*handle.address) as client:
            client.shutdown_server()
            with pytest.raises(ServerError) as excinfo:
                client.run(CampaignSpec(scenario="philosophers"))
            assert excinfo.value.kind == "shutdown"
        thread.join(60)
    finally:
        _unregister(name)
        handle.close()
