"""Tests for mailboxes, interrupts, RNG streams, tracer and the SoC."""

from __future__ import annotations

import pytest

from repro.errors import MailboxError, SimulationError
from repro.sim.interrupts import InterruptController
from repro.sim.mailbox import (
    DEFAULT_MAILBOX_ROLES,
    Mailbox,
    MailboxBank,
    MailboxMessage,
    OverflowPolicy,
)
from repro.sim.rng import RngStreams
from repro.sim.soc import DualCoreSoC, SoCConfig
from repro.sim.trace import TraceEvent, Tracer


class TestMailbox:
    def test_fifo_order(self):
        box = Mailbox(name="m", capacity=4)
        for word in (1, 2, 3):
            assert box.post(MailboxMessage(word=word))
        assert [box.poll().word for _ in range(3)] == [1, 2, 3]
        assert box.poll() is None

    def test_reject_policy_returns_false_when_full(self):
        box = Mailbox(name="m", capacity=1)
        assert box.post(MailboxMessage(word=1))
        assert not box.post(MailboxMessage(word=2))
        assert box.dropped == 1
        assert len(box) == 1

    def test_drop_policy_claims_success(self):
        box = Mailbox(name="m", capacity=1, policy=OverflowPolicy.DROP)
        box.post(MailboxMessage(word=1))
        assert box.post(MailboxMessage(word=2))  # lies, but lossily
        assert box.poll().word == 1
        assert box.poll() is None

    def test_raise_policy(self):
        box = Mailbox(name="m", capacity=1, policy=OverflowPolicy.RAISE)
        box.post(MailboxMessage(word=1))
        with pytest.raises(MailboxError):
            box.post(MailboxMessage(word=2))

    def test_word_must_be_u32(self):
        with pytest.raises(MailboxError):
            MailboxMessage(word=2**32)
        with pytest.raises(MailboxError):
            MailboxMessage(word=-1)

    def test_peek_does_not_consume(self):
        box = Mailbox(name="m")
        box.post(MailboxMessage(word=9))
        assert box.peek().word == 9
        assert len(box) == 1

    def test_high_watermark(self):
        box = Mailbox(name="m", capacity=4)
        for word in range(3):
            box.post(MailboxMessage(word=word))
        box.poll()
        assert box.high_watermark == 3

    def test_drain(self):
        box = Mailbox(name="m", capacity=4)
        for word in range(3):
            box.post(MailboxMessage(word=word))
        assert [m.word for m in box.drain()] == [0, 1, 2]
        assert box.empty

    def test_capacity_validation(self):
        with pytest.raises(MailboxError):
            Mailbox(name="m", capacity=0)


class TestMailboxBank:
    def test_omap_roles(self):
        bank = MailboxBank.omap5912()
        assert set(bank.roles()) == set(DEFAULT_MAILBOX_ROLES)
        assert len(bank.roles()) == 4  # the OMAP5912's four mailboxes

    def test_unknown_role_raises(self):
        bank = MailboxBank.omap5912()
        with pytest.raises(MailboxError):
            bank["nonexistent"]

    def test_stats_shape(self):
        bank = MailboxBank.omap5912()
        bank["arm2dsp_cmd"].post(MailboxMessage(word=1))
        stats = bank.stats()
        assert stats["arm2dsp_cmd"]["posted"] == 1
        assert stats["dsp2arm_reply"]["posted"] == 0


class TestInterrupts:
    def test_raise_and_service(self):
        controller = InterruptController()
        line = controller.add_line("mbox")
        hits = []
        line.connect(lambda: hits.append("served"))
        line.raise_()
        assert controller.dispatch_one() == "mbox"
        assert hits == ["served"]
        assert controller.dispatch_one() is None

    def test_masked_line_not_serviced(self):
        controller = InterruptController()
        line = controller.add_line("mbox")
        line.masked = True
        line.raise_()
        assert controller.dispatch_one() is None
        assert controller.pending_lines() == []

    def test_priority_is_registration_order(self):
        controller = InterruptController()
        first = controller.add_line("high")
        second = controller.add_line("low")
        second.raise_()
        first.raise_()
        assert controller.dispatch_one() == "high"
        assert controller.dispatch_one() == "low"

    def test_duplicate_line_rejected(self):
        controller = InterruptController()
        controller.add_line("x")
        with pytest.raises(SimulationError):
            controller.add_line("x")

    def test_interrupt_storm_guard(self):
        controller = InterruptController()
        line = controller.add_line("storm")
        line.connect(line.raise_)  # handler re-raises itself
        line.raise_()
        with pytest.raises(SimulationError):
            controller.dispatch_all(budget=16)


class TestRngStreams:
    def test_streams_are_reproducible(self):
        a = RngStreams(master_seed=1).stream("merger").random()
        b = RngStreams(master_seed=1).stream("merger").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RngStreams(master_seed=1)
        merger_draw = streams.stream("merger").random()
        # Drawing from another stream must not disturb the first.
        fresh = RngStreams(master_seed=1)
        fresh.stream("sampler").random()
        assert fresh.stream("merger").random() == merger_draw

    def test_different_names_differ(self):
        streams = RngStreams(master_seed=1)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_spawn_derives_child(self):
        child_a = RngStreams(master_seed=1).spawn("run0")
        child_b = RngStreams(master_seed=1).spawn("run0")
        assert child_a.master_seed == child_b.master_seed
        assert RngStreams(1).spawn("run1").master_seed != child_a.master_seed

    def test_fresh_seed_stable(self):
        assert RngStreams(5).fresh_seed("x") == RngStreams(5).fresh_seed("x")


class TestTracer:
    def test_records_and_filters(self):
        tracer = Tracer()
        tracer.record(1, "master", "command", seq=1)
        tracer.record(2, "slave", "task", tid=3)
        tracer.record(3, "master", "command", seq=2)
        assert len(tracer.filter(category="command")) == 2
        assert len(tracer.filter(core="slave")) == 1
        assert len(tracer.filter(since=2)) == 2

    def test_ring_discards_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.record(index, "x", "c", i=index)
        assert tracer.discarded == 3
        assert [e.payload["i"] for e in tracer.events] == [3, 4]

    def test_category_filtering_at_record_time(self):
        tracer = Tracer(enabled_categories=frozenset({"task"}))
        tracer.record(0, "x", "command", seq=1)
        tracer.record(0, "x", "task", tid=1)
        assert len(tracer.events) == 1

    def test_tail_and_dump(self):
        tracer = Tracer()
        for index in range(10):
            tracer.record(index, "x", "c", i=index)
        tail = tracer.tail(3)
        assert [e.payload["i"] for e in tail] == [7, 8, 9]
        dumped = tracer.dump(tail)
        assert dumped[0]["i"] == 7
        assert dumped[0]["category"] == "c"

    def test_describe_is_single_line(self):
        event = TraceEvent(time=5, core="slave", category="task", payload={"tid": 1})
        assert "\n" not in event.describe()


class _CountingCore:
    def __init__(self, name: str, work_until: int = 10**9) -> None:
        self.name = name
        self.steps = 0
        self.work_until = work_until
        self.halted = False

    def step(self, now: int) -> bool:
        self.steps += 1
        return now < self.work_until

    def is_halted(self) -> bool:
        return self.halted


class TestSoC:
    def test_step_requires_attached_cores(self):
        soc = DualCoreSoC()
        with pytest.raises(SimulationError):
            soc.step()

    def test_both_cores_step_each_tick(self):
        soc = DualCoreSoC()
        master, slave = _CountingCore("m"), _CountingCore("s")
        soc.attach(master, slave)
        soc.run(max_ticks=10)
        assert master.steps == 10
        assert slave.steps == 10
        assert soc.now == 10

    def test_step_ratio(self):
        soc = DualCoreSoC(config=SoCConfig(master_steps_per_tick=2))
        master, slave = _CountingCore("m"), _CountingCore("s")
        soc.attach(master, slave)
        soc.run(max_ticks=5)
        assert master.steps == 10
        assert slave.steps == 5

    def test_halted_core_not_stepped(self):
        soc = DualCoreSoC()
        master, slave = _CountingCore("m"), _CountingCore("s")
        slave.halted = True
        soc.attach(master, slave)
        soc.run(max_ticks=4)
        assert slave.steps == 0

    def test_until_predicate_stops_run(self):
        soc = DualCoreSoC()
        soc.attach(_CountingCore("m"), _CountingCore("s"))
        executed = soc.run(max_ticks=100, until=lambda s: s.now >= 7)
        assert executed == 7

    def test_idle_limit_stops_quiescent_system(self):
        soc = DualCoreSoC()
        soc.attach(
            _CountingCore("m", work_until=3), _CountingCore("s", work_until=3)
        )
        executed = soc.run(max_ticks=1000, idle_limit=5)
        assert executed < 20

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SoCConfig(master_steps_per_tick=0)
