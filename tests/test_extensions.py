"""Tests for the extension features: IPC queues, pipeline workload,
context-switch cost, priority inheritance, shrinking, campaigns, CLI."""

from __future__ import annotations

import pytest

from repro.errors import KernelError, ReproError
from repro.pcore.ipc import KMessageQueue
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.programs import Compute, Exit, QRecv, QSend
from repro.pcore.services import ServiceCode
from repro.pcore.tcb import TaskState
from repro.sim.memory import SharedMemory

from repro.pcore.testkit import create_task, run_service


def fresh_kernel(**config_kwargs) -> PCoreKernel:
    return PCoreKernel(
        config=KernelConfig(**config_kwargs),
        shared_memory=SharedMemory(size=16 * 1024),
    )


def run_steps(kernel, count, start=0):
    for tick in range(start, start + count):
        kernel.step(tick)
    return start + count


class TestKMessageQueue:
    def test_fifo(self):
        queue = KMessageQueue(name="q", capacity=2)
        assert queue.try_send(1, 10)
        assert queue.try_send(1, 20)
        assert queue.try_recv(2) == (True, 10)
        assert queue.try_recv(2) == (True, 20)

    def test_full_parks_sender(self):
        queue = KMessageQueue(name="q", capacity=1)
        queue.try_send(1, 10)
        assert not queue.try_send(2, 20)
        assert queue.send_waiters == [2]
        assert queue.pop_send_waiter() == 2

    def test_empty_parks_receiver(self):
        queue = KMessageQueue(name="q")
        delivered, value = queue.try_recv(3)
        assert not delivered and value is None
        assert queue.recv_waiters == [3]

    def test_drop_waiter(self):
        queue = KMessageQueue(name="q", capacity=1)
        queue.try_send(1, 10)
        queue.try_send(2, 20)
        queue.try_recv(3)  # succeeds; no park
        queue.drop_waiter(2)
        assert queue.send_waiters == []

    def test_capacity_validation(self):
        with pytest.raises(KernelError):
            KMessageQueue(name="q", capacity=0)


class TestQueueSyscalls:
    def test_send_recv_roundtrip(self):
        kernel = fresh_kernel()
        received = []

        def sender(ctx):
            yield QSend("chan", 41)
            yield QSend("chan", 42)
            yield Exit(0)

        def receiver(ctx):
            first = yield QRecv("chan")
            second = yield QRecv("chan")
            received.extend([first, second])
            yield Exit(0)

        kernel.register_program("sender", sender)
        kernel.register_program("receiver", receiver)
        create_task(kernel, priority=2, program="sender")
        create_task(kernel, priority=1, program="receiver")
        run_steps(kernel, 40)
        assert received == [41, 42]
        assert not kernel.tasks

    def test_receiver_blocks_until_data(self):
        kernel = fresh_kernel()

        def receiver(ctx):
            yield QRecv("chan")
            yield Exit(0)

        kernel.register_program("receiver", receiver)
        tid = create_task(kernel, priority=1, program="receiver").value
        run_steps(kernel, 5)
        assert kernel.tasks[tid].state is TaskState.BLOCKED
        assert kernel.tasks[tid].waiting_on == "q:chan"

    def test_sender_blocks_on_full_queue(self):
        kernel = fresh_kernel()
        kernel.add_message_queue("chan", capacity=1)

        def sender(ctx):
            yield QSend("chan", 1)
            yield QSend("chan", 2)
            yield Exit(0)

        kernel.register_program("sender", sender)
        tid = create_task(kernel, priority=1, program="sender").value
        run_steps(kernel, 6)
        assert kernel.tasks[tid].state is TaskState.BLOCKED

    def test_suspend_resume_of_queue_blocked_receiver(self):
        kernel = fresh_kernel()

        def receiver(ctx):
            value = yield QRecv("chan")
            yield Exit(value)

        kernel.register_program("receiver", receiver)
        tid = create_task(kernel, priority=1, program="receiver").value
        tick = run_steps(kernel, 4)
        assert kernel.tasks[tid].state is TaskState.BLOCKED
        run_service(kernel, ServiceCode.TS, target=tid)
        assert kernel.tasks[tid].state is TaskState.SUSPENDED
        # Resume with still-empty queue: re-blocks.
        run_service(kernel, ServiceCode.TR, target=tid)
        assert kernel.tasks[tid].state is TaskState.BLOCKED
        # Feed the queue; the parked receiver completes and exits.
        kernel._queue("chan").try_send(99, 7)
        kernel._wake_queue_receiver(kernel._queue("chan"))
        run_steps(kernel, 6, start=tick)
        assert tid not in kernel.tasks

    def test_deleting_queue_blocked_task_cleans_waiters(self):
        kernel = fresh_kernel()

        def receiver(ctx):
            yield QRecv("chan")

        kernel.register_program("receiver", receiver)
        tid = create_task(kernel, priority=1, program="receiver").value
        run_steps(kernel, 4)
        run_service(kernel, ServiceCode.TD, target=tid)
        assert kernel._queue("chan").recv_waiters == []


class TestPipelineWorkload:
    def test_pipeline_delivers_and_verifies(self):
        from repro.workloads.pipeline import (
            build_pipeline,
            run_pipeline_to_completion,
        )

        kernel = fresh_kernel()
        build_pipeline(kernel, stages=2, count=12, queue_capacity=2)
        ticks = run_pipeline_to_completion(kernel)
        assert ticks > 0
        assert not kernel.is_halted()

    def test_pipeline_parameter_validation(self):
        from repro.workloads.pipeline import build_pipeline, make_source_program

        with pytest.raises(ReproError):
            make_source_program(0)
        with pytest.raises(ReproError):
            build_pipeline(fresh_kernel(), stages=0)


class TestContextSwitchCost:
    def _pipeline_ticks(self, cost: int) -> int:
        from repro.workloads.pipeline import (
            build_pipeline,
            run_pipeline_to_completion,
        )

        kernel = fresh_kernel(context_switch_cost=cost)
        build_pipeline(kernel, stages=2, count=16)
        return run_pipeline_to_completion(kernel)

    def test_cost_slows_pipeline_monotonically(self):
        free = self._pipeline_ticks(0)
        cheap = self._pipeline_ticks(2)
        dear = self._pipeline_ticks(8)
        assert free < cheap < dear

    def test_switch_counter(self):
        kernel = fresh_kernel()
        create_task(kernel, priority=1)
        create_task(kernel, priority=2)
        # Each idle task runs ~50 steps; priority 2 first, then 1.
        run_steps(kernel, 150)
        assert kernel.context_switches == 2

    def test_negative_cost_rejected(self):
        with pytest.raises(KernelError):
            KernelConfig(context_switch_cost=-1)


class TestPriorityInheritance:
    def test_inversion_latency_improves(self):
        from repro.workloads.scenarios import (
            high_task_completion_tick,
            priority_inversion_scenario,
        )

        without = priority_inversion_scenario(seed=0, inheritance=False)
        without_result = without.run()
        with_pi = priority_inversion_scenario(seed=0, inheritance=True)
        with_result = with_pi.run()
        assert not without_result.found_bug and not with_result.found_bug
        slow = high_task_completion_tick(without)
        fast = high_task_completion_tick(with_pi)
        assert slow is not None and fast is not None
        assert fast * 5 < slow  # at least 5x better under inheritance

    def test_boost_is_restored_after_release(self):
        from repro.pcore.programs import Acquire, Release, Sleep

        kernel = fresh_kernel(priority_inheritance=True)

        def owner(ctx):
            yield Acquire("m")
            yield Compute(20)
            yield Release("m")
            yield Compute(50)
            yield Exit(0)

        def waiter(ctx):
            yield Sleep(4)
            yield Acquire("m")
            yield Release("m")
            yield Exit(0)

        kernel.register_program("owner", owner)
        kernel.register_program("waiter", waiter)
        low = create_task(kernel, priority=1, program="owner").value
        create_task(kernel, priority=9, program="waiter")
        boosted_seen = False
        for tick in range(80):
            kernel.step(tick)
            task = kernel.tasks.get(low)
            if task is not None and task.priority == 9:
                boosted_seen = True
        assert boosted_seen
        task = kernel.tasks.get(low)
        if task is not None:
            assert task.priority == 1  # restored after release
