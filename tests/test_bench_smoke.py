"""The perf-bench CI smoke, as a tier-1-tooling test.

Runs ``benchmarks/bench_perf_hotpaths.py --quick`` and asserts exactly
the floors the CI workflow gates on, so the gate is reproducible
locally with ``pytest -m benchsmoke`` instead of copy-pasting the
workflow's steps.  Excluded from plain ``pytest`` runs via the marker
(see ``pytest.ini``): it re-times every hot path, which is signal in
CI and noise inside the regular suite.

Floors and their skip conditions mirror the ``criteria`` block the
bench writes into ``benchmarks/out/bench_perf_hotpaths.json`` — change
them there and here together.
"""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path

import pytest

pytestmark = pytest.mark.benchsmoke

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_perf_hotpaths.py"
OUT_PATH = REPO_ROOT / "benchmarks" / "out" / "bench_perf_hotpaths.json"


@pytest.fixture(scope="module")
def report() -> dict:
    """One quick bench run per session; later tests read its JSON."""
    spec = importlib.util.spec_from_file_location(
        "bench_perf_hotpaths_smoke", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # --workers 2 matches the CI runner guidance: oversubscribing a
    # small machine only adds scheduling noise to the timing ratios.
    assert module.main(["--quick", "--workers", "2"]) == 0
    return json.loads(OUT_PATH.read_text())


class TestCiFloors:
    def test_sampling_floor(self, report):
        speedup = report["sampling"]["speedup"]
        floor = report["criteria"]["sampling_ci_floor"]
        assert speedup >= floor, (
            f"sampling speedup regressed: {speedup}x < {floor}x"
        )

    def test_sampling_batch_floor(self, report):
        if report["sampling_batch"]["skipped_numpy"]:
            pytest.skip("no numpy: batch path is the scalar fallback")
        speedup = report["sampling_batch"]["speedup"]
        floor = report["criteria"]["sampling_batch_ci_floor"]
        assert speedup >= floor, (
            f"batch sampling speedup regressed: {speedup}x < {floor}x"
        )

    def test_merge_batch_floor(self, report):
        if report["merge_batch"]["skipped_numpy"]:
            pytest.skip("no numpy: array merge is the scalar fallback")
        speedup = report["merge_batch"]["speedup"]
        floor = report["criteria"]["merge_batch_ci_floor"]
        assert speedup >= floor, (
            f"array sample→merge speedup regressed: {speedup}x < {floor}x"
        )

    def test_commit_loop_floor(self, report):
        if report["commit_loop"]["skipped_numpy"]:
            pytest.skip("no numpy: both legs walk the eager plane")
        speedup = report["commit_loop"]["speedup"]
        floor = report["criteria"]["commit_loop_ci_floor"]
        assert speedup >= floor, (
            f"column commit loop speedup regressed: {speedup}x < {floor}x"
        )

    def test_detector_batch_floor(self, report):
        if report["detector_batch"]["skipped_numpy"]:
            pytest.skip("no numpy: batch path is the scalar fallback")
        speedup = report["detector_batch"]["speedup"]
        floor = report["criteria"]["detector_batch_ci_floor"]
        assert speedup >= floor, (
            f"batched detection speedup regressed: {speedup}x < {floor}x"
        )

    def test_detector_floor(self, report):
        speedup = report["detector"]["speedup"]
        floor = report["criteria"]["detector_ci_floor"]
        assert speedup >= floor, (
            f"detector speedup regressed: {speedup}x < {floor}x"
        )

    def test_batched_dispatch_floor(self, report):
        speedup = report["campaign_batched"]["speedup"]
        floor = report["criteria"]["campaign_batched_ci_floor"]
        assert speedup >= floor, (
            f"batched campaign dispatch regressed: {speedup}x < {floor}x"
        )

    def test_faults_recovery_floor(self, report):
        # Bit-identity of rows recovered under 10% injected worker
        # kills is exact on any hardware; the overhead ratio needs
        # real parallelism to measure recovery rather than contention.
        assert report["faults"]["bit_identical"] is True
        if report["faults"]["skipped_parallel_floor"]:
            pytest.skip("single core: recovery ratio is contention noise")
        overhead = report["faults"]["overhead"]
        floor = report["criteria"]["faults_recovery_ci_floor"]
        assert overhead <= floor, (
            f"fault-recovery overhead regressed: {overhead}x > {floor}x"
        )

    def test_warm_pool_floor(self, report):
        if report["pool"]["skipped_parallel_floor"]:
            pytest.skip("single-core machine: warm-pool ratio is noise")
        speedup = report["pool"]["speedup"]
        floor = report["criteria"]["pool_warm_ci_floor"]
        assert speedup >= floor, (
            f"warm-pool dispatch regressed: {speedup}x < {floor}x"
        )

    def test_adaptive_rounds_never_respawn(self, report):
        # Spawn counting is exact on any hardware: never skipped.
        adaptive = report["adaptive"]
        assert report["criteria"]["adaptive_no_respawn_met"], (
            f"adaptive rounds respawned the pool: "
            f"spawns={adaptive['pool_spawns']}, "
            f"pool_stable={adaptive['pool_stable']}"
        )

    def test_pipeline_schedule_never_respawns(self, report):
        assert report["criteria"]["pipeline_no_respawn_met"], (
            f"composed pipeline respawned its pool: "
            f"spawns={report['pipeline']['pool_spawns']}"
        )

    def test_pipeline_prewarm_floor(self, report):
        if report["pipeline"]["skipped_parallel_floor"]:
            pytest.skip(
                "single-core machine: prewarm overlap cannot exist"
            )
        speedup = report["pipeline"]["speedup"]
        floor = report["criteria"]["pipeline_prewarm_ci_floor"]
        assert speedup >= floor, (
            f"prewarmed round-start regressed vs cold: "
            f"{speedup}x < {floor}x"
        )

    def test_serve_floor(self, report):
        # The bit-identity of served rows is asserted inside the bench
        # itself on any hardware; the warm-vs-cold-process ratio needs
        # real parallelism to be a startup-amortisation measurement.
        if report["serve"]["skipped_parallel_floor"]:
            pytest.skip(
                "single core: clients contend with the workers"
            )
        speedup = report["serve"]["speedup"]
        floor = report["criteria"]["serve_ci_floor"]
        assert speedup >= floor, (
            f"warm-server request speedup regressed: "
            f"{speedup}x < {floor}x"
        )

    def test_report_names_this_machine(self, report):
        assert report["quick"] is True
        assert report["machine"]["cpu_count"] == os.cpu_count()
