"""Tests for convergence analysis and protocol/robustness fuzzing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.convergence import (
    align_states,
    measure_convergence,
    pfa_rows,
    row_kl_divergence,
)
from repro.bridge.protocol import decode_request, decode_result, CommandFrame
from repro.errors import BridgeError, DistributionError
from repro.ptest.generator import PatternGenerator
from repro.ptest.merger import MERGE_OPS, PatternMerger
from repro.ptest.pcore_model import (
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_pfa,
)


class TestKLDivergence:
    def test_identical_rows_zero(self):
        row = {"a": 0.6, "b": 0.4}
        assert row_kl_divergence(row, dict(row)) == pytest.approx(0.0)

    def test_divergence_positive_for_different_rows(self):
        true = {"a": 0.9, "b": 0.1}
        learned = {"a": 0.5, "b": 0.5}
        assert row_kl_divergence(true, learned) > 0.1

    def test_zero_mass_on_used_transition_rejected(self):
        with pytest.raises(DistributionError):
            row_kl_divergence({"a": 1.0}, {"a": 0.0})

    def test_empty_row(self):
        assert row_kl_divergence({}, {}) == 0.0


class TestAlignment:
    def _generator(self):
        return PatternGenerator(
            regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=0
        )

    def test_alignment_covers_reachable_states(self):
        generator = self._generator()
        mapping = align_states(generator.dfa, pcore_pfa())
        assert generator.dfa.start in mapping
        assert mapping[generator.dfa.start] == pcore_pfa().start

    def test_alignment_respects_transitions(self):
        generator = self._generator()
        pfa = pcore_pfa()
        mapping = align_states(generator.dfa, pfa)
        for dfa_state, pfa_state in mapping.items():
            for symbol, dfa_target in generator.dfa.outgoing(dfa_state).items():
                pfa_arc = pfa.step(pfa_state, symbol)
                assert pfa_arc is not None
                assert mapping[dfa_target] == pfa_arc.target

    def test_convergence_decreases_with_budget(self):
        generator = self._generator()
        pfa = pcore_pfa()
        mapping = align_states(generator.dfa, pfa)
        points = measure_convergence(
            pfa, generator.dfa, mapping, [20, 2000], seed=5
        )
        assert points[-1].mean_kl < points[0].mean_kl

    def test_pfa_rows_skips_absorbing(self):
        rows = pfa_rows(pcore_pfa())
        assert len(rows) == 5  # start, TC, TCH, TS, TR (not TD/TY)
        for row in rows.values():
            assert sum(row.values()) == pytest.approx(1.0)


class TestProtocolFuzz:
    @given(word=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=300, deadline=None)
    def test_decode_request_never_crashes_unexpectedly(self, word):
        """Arbitrary words either decode cleanly or raise BridgeError —
        never anything else (robust front line against a corrupt
        mailbox)."""
        frame = CommandFrame(
            sequence=(word >> 18) & 0x3FF, program=None, issuer=None
        )
        try:
            request = decode_request(word, frame)
        except BridgeError:
            return
        assert request.service is not None

    @given(word=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=300, deadline=None)
    def test_decode_result_never_crashes_unexpectedly(self, word):
        try:
            status, sequence, value = decode_result(word)
        except BridgeError:
            return
        assert 0 <= sequence < 4096
        assert value is None or value >= 0


@given(
    op=st.sampled_from(sorted(MERGE_OPS)),
    count=st.integers(min_value=1, max_value=6),
    size=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=60, deadline=None)
def test_generated_batches_merge_under_every_op(op, count, size, seed):
    """Integration property: real PFA batches survive every merge op and
    the merged pattern is always a valid interleaving."""
    generator = PatternGenerator.from_pfa(pcore_pfa(), seed=seed)
    patterns = generator.generate_batch(count, size)
    merged = PatternMerger(op=op, seed=seed, chunk=2).merge(patterns)
    assert len(merged) == sum(len(p) for p in patterns)
