"""Tests for the scenario registry and the batched streaming executor.

Covers the registry's typed parameter specs, ``ScenarioRef``
round-trips (ref -> pickle -> worker-side build), batched-vs-unbatched
campaign determinism, the result-sink streaming protocol, and the
registered workload catalogue itself (all eight workloads runnable by
name, ``clean_spin`` never detecting).
"""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.errors import ConfigError
from repro.ptest.campaign import Campaign, compare_ops
from repro.ptest.detector import AnomalyKind
from repro.ptest.executor import CellExecutor, CollectSink, WorkCell
from repro.workloads.registry import (
    REGISTRY,
    ScenarioRef,
    ScenarioRegistry,
    build_scenario,
    scenario_names,
    scenario_ref,
)

#: The eight first-class workloads the registry must always expose.
WORKLOADS = (
    "philosophers",
    "quicksort_stress",
    "producer_consumer",
    "priority_inversion",
    "barrier",
    "readers_writers",
    "pipeline",
    "clean_spin",
)


class TestRegistry:
    def test_all_workloads_registered(self):
        names = scenario_names()
        for name in WORKLOADS:
            assert name in names

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register("dup", lambda seed, x=1: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup", lambda seed, x=1: None)
        # The default registry enforces the same invariant.
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register("philosophers", lambda seed: None)

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(ConfigError, match="philosophers"):
            build_scenario("no_such_scenario")

    def test_param_spec_inferred_from_signature(self):
        spec = REGISTRY.get("philosophers")
        op = spec.param("op")
        assert op.type is str and op.default == "cyclic"
        ordered = spec.param("ordered")
        assert ordered.type is bool and ordered.default is False

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="no parameter"):
            scenario_ref("philosophers", flavour="spicy")

    def test_type_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="expects int"):
            scenario_ref("clean_spin", tasks="many")
        with pytest.raises(ConfigError, match="expects a bool"):
            scenario_ref("philosophers", ordered="maybe")
        # bool is an int subclass but must not pass for one.
        with pytest.raises(ConfigError, match="expects int"):
            scenario_ref("clean_spin", tasks=True)

    def test_string_params_coerced(self):
        # CLI --param values arrive as strings; the spec converts them.
        ref = scenario_ref(
            "philosophers", ordered="true", hold_steps="30", op="cyclic"
        )
        params = dict(ref.params)
        assert params["ordered"] is True
        assert params["hold_steps"] == 30
        assert params["op"] == "cyclic"

    def test_builder_without_seed_param_rejected(self):
        registry = ScenarioRegistry()
        with pytest.raises(ConfigError, match="seed"):
            registry.register("bad", lambda: None)

    def test_builder_without_param_default_rejected(self):
        registry = ScenarioRegistry()
        with pytest.raises(ConfigError, match="needs a default"):
            registry.register("bad", lambda seed, size: None)


class TestScenarioRef:
    def test_ref_round_trips_through_pickle(self):
        ref = scenario_ref("philosophers", op="cyclic", hold_steps=30)
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        # The unpickled ref resolves its builder through the registry
        # (exactly what happens inside a worker process) and produces
        # the same run as a direct build.
        direct = build_scenario(
            "philosophers", 0, op="cyclic", hold_steps=30
        ).run()
        via_ref = clone(0).run()
        assert via_ref.found_bug == direct.found_bug
        assert via_ref.ticks == direct.ticks
        assert via_ref.commands_issued == direct.commands_issued

    def test_params_are_order_canonical(self):
        a = scenario_ref("philosophers", op="cyclic", chunk=2)
        b = scenario_ref("philosophers", chunk=2, op="cyclic")
        assert a == b and hash(a) == hash(b)

    def test_with_params_overlays(self):
        base = scenario_ref("philosophers", op="cyclic")
        control = base.with_params(ordered=True)
        assert dict(control.params)["ordered"] is True
        assert dict(control.params)["op"] == "cyclic"
        assert dict(base.params).get("ordered") is None

    def test_describe(self):
        ref = scenario_ref("clean_spin", tasks=2)
        assert ref.describe() == "clean_spin(tasks=2)"

    def test_hash_eq_follow_name_and_sorted_params(self):
        # The worker-cache key contract: equality/hash over
        # (name, sorted(params)) only — hand-built refs with scrambled
        # param order dedupe exactly like registry-minted ones.
        minted = scenario_ref("clean_spin", tasks=2, total_steps=40)
        hand_built = ScenarioRef(
            name="clean_spin",
            params=(("total_steps", 40), ("tasks", 2)),  # unsorted
        )
        assert hand_built == minted
        assert hash(hand_built) == hash(minted)
        assert hand_built.cache_key == minted.cache_key
        assert len({hand_built, minted}) == 1
        assert minted != scenario_ref("clean_spin", tasks=3, total_steps=40)
        assert minted != "clean_spin"  # foreign types never equal

    def test_minting_registry_excluded_from_identity(self):
        registry = ScenarioRegistry()
        registry.register("twin", lambda seed, x=1: None)
        bound = registry.ref("twin", x=2)
        unbound = ScenarioRef(name="twin", params=(("x", 2),))
        assert bound == unbound and hash(bound) == hash(unbound)

    def test_mapping_params_accepted_and_canonicalised(self):
        minted = scenario_ref("clean_spin", tasks=2, total_steps=40)
        from_mapping = ScenarioRef(
            name="clean_spin", params={"total_steps": 40, "tasks": 2}
        )
        assert from_mapping == minted
        assert from_mapping.params == minted.params

    def test_malformed_params_get_a_clear_error(self):
        with pytest.raises(ConfigError, match="mapping or .key, value."):
            ScenarioRef(name="clean_spin", params=("tasks", 2))

    def test_non_string_param_keys_rejected(self):
        with pytest.raises(ConfigError, match="must be strings"):
            ScenarioRef(name="clean_spin", params=((1, "tasks"),))

    def test_duplicate_param_keys_rejected(self):
        with pytest.raises(ConfigError, match="duplicate parameter"):
            ScenarioRef(
                name="clean_spin", params=(("tasks", 1), ("tasks", 2))
            )

    def test_unhashable_param_value_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unhashable"):
            ScenarioRef(name="clean_spin", params=(("tasks", [1, 2]),))
        with pytest.raises(ConfigError, match="must be hashable"):
            ScenarioRef(name="clean_spin", params=(("cfg", {"a": 1}),))

    def test_custom_registry_refs_resolve_through_their_registry(self):
        registry = ScenarioRegistry()
        seen = []

        @registry.register("philosophers")  # shadows the built-in name
        def _fake(seed: int, op: str = "cyclic"):
            seen.append((seed, op))

            class _Run:
                def run(self):
                    return None

            return _Run()

        ref = registry.ref("philosophers", op="burst")
        ref(7)
        assert seen == [(7, "burst")]  # not the default registry's builder
        assert ref.with_params(op="cyclic").registry is registry


class TestWorkloadCatalogue:
    @pytest.mark.parametrize(
        "name", ["barrier", "readers_writers", "pipeline", "clean_spin"]
    )
    def test_new_scenarios_run_clean_by_default(self, name):
        result = build_scenario(name, 0).run()
        assert not result.found_bug, result.summary()

    def test_faulty_barrier_starves(self):
        result = build_scenario("barrier", 0, faulty=True).run()
        assert result.found_bug
        assert result.report.primary.kind is AnomalyKind.STARVATION

    def test_clean_spin_duration_scales_and_stays_clean(self):
        short = build_scenario("clean_spin", 0, total_steps=100).run()
        long = build_scenario("clean_spin", 0, total_steps=2_000).run()
        assert not short.found_bug and not long.found_bug
        assert long.ticks > 4 * short.ticks  # the benchmarking knob

    def test_philosophers_by_name_matches_direct(self):
        from repro.workloads.scenarios import philosophers_case2

        by_name = build_scenario("philosophers", 0, op="cyclic").run()
        direct = philosophers_case2(seed=0, op="cyclic").run()
        assert by_name.found_bug and direct.found_bug
        assert by_name.ticks == direct.ticks


def _ref_campaign(workers=1, batch_size=None, seeds=(0, 1, 2)):
    campaign = Campaign(
        seeds=seeds, workers=workers, batch_size=batch_size
    )
    campaign.add_scenario("cyclic", "philosophers", op="cyclic")
    campaign.add_scenario("ordered", "philosophers", ordered=True)
    return campaign


class TestBatchedDeterminism:
    def test_rows_identical_at_any_workers_and_batch_size(self):
        with warnings.catch_warnings():
            # Any pickling-fallback RuntimeWarning is a failure here.
            warnings.simplefilter("error", RuntimeWarning)
            baseline_campaign = _ref_campaign()
            baseline = baseline_campaign.run()
            for workers, batch_size in [(2, 1), (2, 2), (2, 100), (3, None)]:
                campaign = _ref_campaign(workers, batch_size)
                assert campaign.run() == baseline, (workers, batch_size)
                # Per-run outcomes agree too, not just the summaries.
                for variant in campaign.variants:
                    assert [
                        r.ticks for r in campaign.results[variant]
                    ] == [
                        r.ticks for r in baseline_campaign.results[variant]
                    ]

    def test_ref_variants_always_parallelise(self):
        campaign = _ref_campaign(workers=2, seeds=(0, 1))
        executor = CellExecutor(workers=2)
        assert executor._portable(campaign.variants)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            cells = [
                WorkCell(variant=name, seed=seed)
                for name in campaign.variants
                for seed in (0, 1)
            ]
            executor.run_cells(campaign.variants, cells)
        assert executor.ran_parallel is True

    def test_batch_packing_telemetry(self):
        variants = {"spin": scenario_ref("clean_spin", total_steps=50, tasks=2)}
        cells = [WorkCell(variant="spin", seed=s) for s in range(6)]
        executor = CellExecutor(workers=2, batch_size=2)
        executor.run_cells(variants, cells)
        assert executor.last_batch_size == 2
        assert executor.batches_submitted == 3
        executor.run_cells(variants, cells, batch_size=4)
        assert executor.last_batch_size == 4
        assert executor.batches_submitted == 2

    def test_bad_batch_size_rejected(self):
        variants = {"spin": scenario_ref("clean_spin", total_steps=50)}
        cells = [WorkCell(variant="spin", seed=s) for s in range(2)]
        with pytest.raises(ValueError, match="batch_size"):
            CellExecutor(workers=2, batch_size=0).run_cells(variants, cells)
        # The serial path rejects it too (no silent acceptance).
        with pytest.raises(ValueError, match="batch_size"):
            CellExecutor(workers=1).run_cells(
                variants, cells, batch_size=-3
            )


class TestResultSinks:
    def test_sink_receives_cells_in_submission_order(self):
        variants = {"spin": scenario_ref("clean_spin", total_steps=50, tasks=2)}
        cells = [WorkCell(variant="spin", seed=s) for s in range(5)]
        reference = CellExecutor(workers=1).run_cells(variants, cells)
        for workers, batch_size in [(1, None), (2, 2)]:
            sink = CollectSink()
            returned = CellExecutor(
                workers=workers, batch_size=batch_size
            ).run_cells(variants, cells, sink=sink)
            assert returned is None  # streaming mode materialises nothing
            assert sink.cells == cells
            assert [r.ticks for r in sink.results] == [
                r.ticks for r in reference
            ]

    def test_campaign_streams_without_materializing(self):
        campaign = _ref_campaign(workers=2, seeds=(0, 1))
        campaign.keep_results = False
        rows = campaign.run()
        assert campaign.results == {}
        reference = _ref_campaign(seeds=(0, 1)).run()
        assert rows == reference
        # The accessors read the streaming accumulators, not results.
        assert campaign.detection_rate("cyclic") == 1.0
        assert campaign.detection_rate("ordered") == 0.0
        assert campaign.kind_counts("cyclic") == {"deadlock": 2}

    def test_campaign_forwards_to_external_sink(self):
        campaign = _ref_campaign(seeds=(0, 1))
        sink = CollectSink()
        campaign.run(sink=sink)
        assert len(sink.results) == 4  # 2 variants x 2 seeds
        assert [c.variant for c in sink.cells] == [
            "cyclic", "cyclic", "ordered", "ordered",
        ]


class TestGridSweeps:
    def test_add_grid_products_and_fixed_params(self):
        campaign = Campaign(seeds=(0,))
        names = campaign.add_grid(
            "phil",
            "philosophers",
            {"op": ["cyclic", "round_robin"], "ordered": [False, True]},
            hold_steps=30,
        )
        assert names == [
            "phil[op=cyclic,ordered=False]",
            "phil[op=cyclic,ordered=True]",
            "phil[op=round_robin,ordered=False]",
            "phil[op=round_robin,ordered=True]",
        ]
        for name in names:
            assert dict(campaign.variants[name].params)["hold_steps"] == 30

    def test_grid_campaign_detects_only_buggy_variants(self):
        campaign = Campaign(seeds=(0, 1), workers=2)
        campaign.add_grid(
            "phil", "philosophers", {"ordered": [False, True]}
        )
        rows = {row.variant: row for row in campaign.run()}
        assert rows["phil[ordered=False]"].rate == 1.0
        assert rows["phil[ordered=True]"].rate == 0.0

    def test_grid_duplicate_names_rejected(self):
        campaign = Campaign()
        campaign.add_grid("p", "philosophers", {"ordered": [True]})
        with pytest.raises(ValueError, match="already registered"):
            campaign.add_grid("p", "philosophers", {"ordered": [True]})

    def test_grid_fixed_param_overlap_rejected(self):
        campaign = Campaign()
        with pytest.raises(ConfigError, match="both fixed and in the grid"):
            campaign.add_grid(
                "p", "philosophers", {"ordered": [False, True]}, ordered=True
            )


class TestCompareOps:
    def test_registry_path_parallelises_and_scores(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            serial = compare_ops(
                "philosophers",
                ops=("cyclic", "burst"),
                seeds=(0, 1),
                expected=AnomalyKind.DEADLOCK,
            )
            parallel = compare_ops(
                "philosophers",
                ops=("cyclic", "burst"),
                seeds=(0, 1),
                expected=AnomalyKind.DEADLOCK,
                workers=2,
                batch_size=2,
            )
        assert serial == parallel
        by_name = {row.variant: row for row in serial}
        assert by_name["cyclic"].detections == 2

    def test_legacy_callable_still_supported(self):
        from repro.workloads.scenarios import philosophers_case2

        rows = compare_ops(
            lambda op, seed: philosophers_case2(seed=seed, op=op),
            ops=("cyclic",),
            seeds=(0,),
            expected=AnomalyKind.DEADLOCK,
        )
        assert rows[0].detections == 1
