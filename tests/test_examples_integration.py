"""Integration: every example script runs to completion and says what
it promises.  Examples are the public face of the library; a refactor
that breaks them must fail CI."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "pTest quickstart" in output
    assert "generated patterns" in output
    assert "no anomalies" in output or "bug report" in output


def test_fig1_walkthrough():
    output = run_example("fig1_walkthrough.py")
    assert "resume order: 'good'" in output
    assert "terminated: True" in output
    assert "unreachable states" in output
    assert "starvation" in output


def test_distribution_tuning():
    output = run_example("distribution_tuning.py")
    assert "paper (Fig. 5)" in output
    assert "uniform" in output
    assert "1000 traces" in output


def test_adaptive_sweep():
    output = run_example("adaptive_sweep.py")
    assert "adaptive philosophers sweep" in output
    assert "round 3" in output
    # The zoom pins away the ordered control and narrows hold_steps.
    assert "ordered=True" in output  # swept in round 1...
    assert "phil[hold_steps=15]" in output  # ...zoomed to 1 cell by round 3
    assert "pool stable across rounds: True" in output


def test_pipeline_sweep():
    output = run_example("pipeline_sweep.py")
    assert "pipeline sweep: zoom:2 -> replay:2" in output
    # Stage 1 zooms the grid, stage 2 re-drives recorded deadlocks.
    assert "stage=zoom" in output
    assert "stage=replay" in output
    assert "replay[phil[" in output
    assert "pool stable across the composed schedule: True" in output
    assert "prewarmed 4 ref(s)" in output


def test_batch_sampling():
    output = run_example("batch_sampling.py")
    assert "bit-identical to 256 scalar samplers" in output
    assert "scalar fallback (use_numpy=False): same patterns" in output
    assert "wait-graph delta(s) recorded" in output
    assert "re-confirmed from recorded deltas (consistent=True)" in output


@pytest.mark.slow
def test_stress_pcore():
    output = run_example("stress_pcore.py", "1")
    assert "crash" in output
    assert "no crash: the garbage collector reclaimed every task" in output


@pytest.mark.slow
def test_deadlock_hunt():
    output = run_example("deadlock_hunt.py")
    assert "cyclic" in output
    assert "CLEAN" in output
    assert "CP0" in output  # state records printed


@pytest.mark.slow
def test_baseline_comparison():
    output = run_example("baseline_comparison.py")
    assert "pTest (adaptive, cyclic)" in output
    assert "ConTest-style random" in output
    assert "CHESS-lite systematic" in output


def test_fault_tolerant_campaign():
    output = run_example("fault_tolerant_campaign.py")
    assert "deadlock hunt under chaos" in output
    assert "quarantine: 1 of 6 cells (timeout=1); 5 completed" in output
    assert "phil seed=3: timeout" in output
    assert "deadlock detection(s)" in output
    assert "bit-identical" in output


def test_serve_client():
    output = run_example("serve_client.py")
    assert "server: listening on" in output
    assert "client 2:" in output  # all three clients reported
    assert "one pool spawn per worker count: True" in output
    assert "all clients bit-identical: True" in output
    assert "server drained and stopped" in output
