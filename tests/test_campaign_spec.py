"""CampaignSpec: the serializable request schema behind the CLI,
``repro serve`` and embedders.

Three contracts pinned here: (1) ``to_json``/``from_json`` round-trips
every knob combination to an *equal* spec — the wire format loses
nothing; (2) ``validate()`` is the single choke point that rejects
contradictory knob combinations with messages naming the fix; (3)
``execute_spec`` produces results bit-identical to driving
``Campaign``/``AdaptiveCampaign`` by hand, so the spec path is a pure
re-plumbing of the legacy entry points.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.automata.batch import numpy_available
from repro.errors import ReproError
from repro.ptest.campaign import Campaign
from repro.ptest.adaptive import AdaptiveCampaign, GridZoom
from repro.ptest.spec import (
    CampaignSpec,
    RoundResult,
    SpecOutcome,
    execute_spec,
    round_from_dict,
    round_to_dict,
)

REPO = Path(__file__).parent.parent


# -- JSON round-trip ----------------------------------------------------


ROUND_TRIP_SPECS = [
    CampaignSpec(scenario="philosophers"),
    CampaignSpec(scenario="philosophers", mode="run", seeds=(7,)),
    CampaignSpec(
        scenario="philosophers",
        params=(("count", "3"), ("hold_steps", "5")),
        grid=(("op", ("rr", "random")),),
        seeds=(0, 1, 2),
        workers=4,
        batch_size=8,
        cell_timeout=2.5,
        quarantine=True,
        capture_per_variant=2,
    ),
    CampaignSpec(
        scenario="clean_spin",
        mode="adapt",
        policy="grid_zoom",
        rounds=4,
        seeds=(0, 1),
    ),
    CampaignSpec(
        scenario="philosophers",
        mode="adapt",
        pipeline="grid_zoom:2,replay:1",
        max_sources=3,
        prewarm=False,
        checkpoint="/tmp/ck.json",
        resume=True,
        seeds=(5, 6),
    ),
]


@pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
def test_json_round_trip_is_equal(spec):
    rebuilt = CampaignSpec.from_json(spec.to_json())
    assert rebuilt == spec
    # And the dict form is plain-JSON stable (no tuples leaking out).
    assert json.loads(spec.to_json()) == spec.to_dict()


def test_to_dict_omits_defaults():
    # scenario/mode/seeds are always explicit on the wire; every other
    # default-valued knob is omitted so spec files stay readable.
    payload = CampaignSpec(scenario="philosophers").to_dict()
    assert payload == {
        "scenario": "philosophers",
        "mode": "campaign",
        "seeds": [0, 1, 2, 3, 4],
    }


def test_param_order_is_canonical_grid_order_is_not():
    a = CampaignSpec(
        scenario="philosophers", params=(("a", "1"), ("b", "2"))
    )
    b = CampaignSpec(
        scenario="philosophers", params=(("b", "2"), ("a", "1"))
    )
    assert a == b  # fixed params: order irrelevant, stored sorted
    g1 = CampaignSpec(
        scenario="philosophers", grid=(("x", ("1",)), ("y", ("2",)))
    )
    g2 = CampaignSpec(
        scenario="philosophers", grid=(("y", ("2",)), ("x", ("1",)))
    )
    assert g1 != g2  # grid order names the cartesian variants


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ReproError, match="unknown"):
        CampaignSpec.from_dict(
            {"scenario": "philosophers", "worker": 2}
        )


def test_from_json_rejects_malformed_json():
    with pytest.raises(ReproError, match="not valid JSON"):
        CampaignSpec.from_json("{nope")


def test_with_seeds():
    spec = CampaignSpec(scenario="philosophers", seeds=(3, 4))
    assert spec.with_seeds(3).seeds == (0, 1, 2)


def test_round_result_wire_codec_round_trips():
    spec = CampaignSpec(
        scenario="philosophers",
        params=(("count", "2"),),
        seeds=(0, 1),
    )
    outcome = execute_spec(spec)
    for round_ in outcome.rounds:
        assert round_from_dict(round_to_dict(round_)) == round_


# -- validate(): the contradictory-knob choke point ---------------------


@pytest.mark.parametrize(
    ("kwargs", "match"),
    [
        ({"scenario": ""}, "non-empty scenario"),
        ({"scenario": "x", "mode": "sweep"}, "mode must be one of"),
        ({"scenario": "x", "seeds": ()}, "at least one seed"),
        ({"scenario": "x", "seeds": (0, "1")}, "integers"),
        ({"scenario": "x", "workers": 0}, "workers must be >= 1"),
        ({"scenario": "x", "batch_size": 0}, "batch_size must be >= 1"),
        ({"scenario": "x", "cell_timeout": 0}, "cell_timeout must be > 0"),
        ({"scenario": "x", "quarantine": 1}, "quarantine must be"),
        ({"scenario": "x", "capture_per_variant": -1}, "capture_per_variant"),
        (
            {
                "scenario": "x",
                "params": (("k", "1"),),
                "grid": (("k", ("1", "2")),),
            },
            "both fixed and in the grid",
        ),
        ({"scenario": "x", "grid": (("k", ()),)}, "no values to sweep"),
        (
            {"scenario": "x", "mode": "run", "seeds": (0, 1)},
            "one cell",
        ),
        (
            {"scenario": "x", "mode": "run", "seeds": (0,), "workers": 2},
            "in-process",
        ),
        (
            {
                "scenario": "x",
                "mode": "run",
                "seeds": (0,),
                "grid": (("k", ("1",)),),
            },
            "fixed params only",
        ),
        (
            {"scenario": "x", "mode": "campaign", "rounds": 3},
            "only apply to mode 'adapt'",
        ),
        (
            {"scenario": "x", "mode": "campaign", "checkpoint": "ck"},
            "never take effect",
        ),
        (
            {
                "scenario": "x",
                "mode": "adapt",
                "policy": "grid_zoom",
                "pipeline": "replay",
            },
            "mutually exclusive",
        ),
        ({"scenario": "x", "mode": "adapt", "rounds": 0}, "rounds must be"),
        (
            {"scenario": "x", "mode": "adapt", "max_sources": 0},
            "max_sources must be",
        ),
        (
            {"scenario": "x", "mode": "adapt", "resume": True},
            "needs a checkpoint",
        ),
        (
            {"scenario": "x", "mode": "adapt", "policy": "nope"},
            "unknown policy",
        ),
        (
            {"scenario": "x", "mode": "adapt", "pipeline": "grid_zoom"},
            "unbounded",
        ),
        (
            {
                "scenario": "x",
                "merge_batch": True,
                "batch_sampling": False,
            },
            "silently disable"
            if numpy_available()
            else "needs numpy|numpy",
        ),
    ],
)
def test_validate_rejects(kwargs, match):
    with pytest.raises((ReproError, ValueError), match=match):
        CampaignSpec(**kwargs)


def test_validate_runs_on_from_json_too():
    payload = json.dumps(
        {"scenario": "x", "mode": "run", "seeds": [0], "workers": 3}
    )
    with pytest.raises(ReproError, match="in-process"):
        CampaignSpec.from_json(payload)


def test_serial_quarantine_and_timeout_stay_legal():
    # Pinned: these are real configurations (see the CLI fault-
    # tolerance tests), not contradictions.
    spec = CampaignSpec(
        scenario="philosophers", quarantine=True, cell_timeout=5.0
    )
    assert spec.workers == 1


# -- execute_spec equivalence vs the legacy entry points ---------------


GRID = {"hold_steps": ["3", "5"]}


def test_execute_spec_campaign_matches_hand_built_campaign():
    spec = CampaignSpec(
        scenario="philosophers",
        params=(("count", "2"),),
        grid=(("hold_steps", ("3", "5")),),
        seeds=(0, 1),
    )
    outcome = execute_spec(spec)
    direct = Campaign(seeds=(0, 1), workers=1)
    direct.add_grid("philosophers", "philosophers", GRID, count="2")
    assert list(outcome.rows) == list(direct.run())
    assert isinstance(outcome, SpecOutcome)
    assert outcome.rounds and isinstance(outcome.rounds[0], RoundResult)


def test_execute_spec_adapt_matches_hand_built_adaptive():
    spec = CampaignSpec(
        scenario="philosophers",
        mode="adapt",
        params=(("count", "2"),),
        grid=(("hold_steps", ("3", "5")),),
        seeds=(0, 1),
        policy="grid_zoom",
        rounds=2,
    )
    outcome = execute_spec(spec)
    direct = AdaptiveCampaign(
        seeds=(0, 1), workers=1, rounds=2, policy=GridZoom()
    )
    direct.add_grid("philosophers", "philosophers", GRID, count="2")
    result = direct.run()
    assert [list(r.rows) for r in outcome.rounds] == [
        list(obs.rows) for obs in result.rounds
    ]
    assert outcome.schedule == "policy=grid_zoom"


def test_execute_spec_run_mode():
    spec = CampaignSpec(
        scenario="philosophers",
        mode="run",
        params=(("count", "2"),),
        seeds=(0,),
    )
    outcome = execute_spec(spec)
    assert outcome.run_result is not None
    assert len(outcome.rounds) == 1


# -- CLI round trip: --dump-spec / --spec ------------------------------


def _repro(*args: str, timeout: int = 300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_dump_spec_then_spec_round_trip(tmp_path):
    spec_file = tmp_path / "campaign.json"
    dumped = _repro(
        "campaign",
        "philosophers",
        "--seeds",
        "2",
        "--grid",
        "count=2,3",
        "--dump-spec",
        str(spec_file),
    )
    assert dumped.returncode == 0, dumped.stderr
    assert "spec written to" in dumped.stdout
    spec = CampaignSpec.from_json(spec_file.read_text())
    assert spec.scenario == "philosophers"
    assert spec.seeds == (0, 1)

    flags = _repro(
        "campaign", "philosophers", "--seeds", "2", "--grid", "count=2,3"
    )
    from_file = _repro("campaign", "--spec", str(spec_file))
    assert from_file.returncode == 0, from_file.stderr
    assert from_file.stdout == flags.stdout


def test_cli_spec_mode_mismatch_is_config_error(tmp_path):
    spec_file = tmp_path / "adapt.json"
    spec_file.write_text(
        CampaignSpec(
            scenario="philosophers", mode="adapt", rounds=2
        ).to_json()
    )
    result = _repro("campaign", "--spec", str(spec_file))
    assert result.returncode == 2
    assert "mode 'adapt'" in result.stdout
    assert "repro submit" in result.stdout


def test_cli_spec_and_scenario_together_is_config_error(tmp_path):
    spec_file = tmp_path / "c.json"
    spec_file.write_text(CampaignSpec(scenario="philosophers").to_json())
    result = _repro(
        "campaign", "philosophers", "--spec", str(spec_file)
    )
    assert result.returncode == 2
    assert "not both" in result.stdout
