"""Integration tests: the paper's two case studies end to end."""

from __future__ import annotations

from repro.ptest.detector import AnomalyKind
from repro.workloads.scenarios import (
    lifecycle_pfa,
    philosophers_case2,
    producer_consumer_scenario,
    stress_case1,
)


class TestLifecyclePFA:
    def test_degenerate_pfa_always_emits_sequence(self):
        from repro.ptest.generator import PatternGenerator

        generator = PatternGenerator.from_pfa(
            lifecycle_pfa(("TC", "TS", "TR")), seed=0
        )
        for _ in range(5):
            assert generator.generate(3).symbols == ("TC", "TS", "TR")


class TestCase1Stress:
    """Test case 1: 16 quick-sort tasks, create/delete churn, GC crash."""

    def test_buggy_gc_crash_is_found(self):
        result = stress_case1(seed=0).run()
        assert result.found_bug
        assert result.report.primary.kind is AnomalyKind.CRASH
        assert "allocation failed" in result.report.primary.description
        assert result.report.kernel_panic is not None

    def test_crash_found_across_seeds(self):
        for seed in range(3):
            result = stress_case1(seed=seed).run()
            assert result.found_bug, f"seed {seed} missed the GC crash"
            assert result.report.primary.kind is AnomalyKind.CRASH

    def test_correct_gc_control_is_clean(self):
        result = stress_case1(seed=0, buggy_gc=False, max_ticks=20_000).run()
        assert not result.found_bug

    def test_stress_keeps_sixteen_pairs(self):
        result = stress_case1(seed=0).run()
        assert result.config.pattern_count == 16
        assert result.service_counts["TC"] >= 16

    def test_report_carries_reproduction_info(self):
        result = stress_case1(seed=1).run()
        report = result.report
        assert report.config.seed == 1
        assert report.merged_description
        assert report.trace_tail
        text = report.describe()
        assert "crash" in text
        assert "state records" in text

    def test_crash_reproduces_deterministically(self):
        first = stress_case1(seed=2).run()
        second = stress_case1(seed=2).run()
        assert first.report.found_at == second.report.found_at
        assert first.report.primary.description == second.report.primary.description


class TestCase2Philosophers:
    """Test case 2: 3 tasks, 3 mutually exclusive resources, deadlock."""

    def test_cyclic_merge_finds_deadlock(self):
        result = philosophers_case2(seed=0).run()
        assert result.found_bug
        anomaly = result.report.primary
        assert anomaly.kind is AnomalyKind.DEADLOCK
        assert len(anomaly.tids) == 3  # all three philosophers
        assert set(anomaly.resources) == {"fork0", "fork1", "fork2"}

    def test_deadlock_found_across_seeds(self):
        for seed in range(3):
            result = philosophers_case2(seed=seed).run()
            assert result.found_bug
            assert result.report.primary.kind is AnomalyKind.DEADLOCK

    def test_ordered_acquisition_control_is_clean(self):
        for op in ("cyclic", "round_robin", "burst"):
            result = philosophers_case2(seed=0, op=op, ordered=True).run()
            assert not result.found_bug, f"false positive under op={op}"

    def test_state_records_in_report(self):
        result = philosophers_case2(seed=0).run()
        records = result.report.state_records
        assert len(records) == 3
        for record in records:
            assert record.pattern == ("TC", "TS", "TR")
            assert record.sequence_number == 3

    def test_deadlocked_tasks_are_blocked_in_dump(self):
        result = philosophers_case2(seed=0).run()
        blocked_lines = [
            line for line in result.report.task_dump if "blocked" in line
        ]
        assert len(blocked_lines) == 3


class TestProducerConsumerScenario:
    def test_healthy_clean(self):
        result = producer_consumer_scenario(seed=0, faulty=False).run()
        assert not result.found_bug

    def test_lost_wakeup_detected_as_starvation(self):
        result = producer_consumer_scenario(seed=0, faulty=True).run()
        assert result.found_bug
        assert result.report.primary.kind is AnomalyKind.STARVATION
        assert "consumer" in result.report.primary.description
