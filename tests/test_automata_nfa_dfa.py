"""Tests for Thompson NFA construction and subset/minimised DFAs."""

from __future__ import annotations

import pytest

from repro.automata.dfa import minimize_dfa, nfa_to_dfa
from repro.automata.nfa import NFA, regex_to_nfa
from repro.automata.regex_parser import parse_regex
from repro.errors import AutomatonError


def compile_nfa(source: str) -> NFA:
    return regex_to_nfa(parse_regex(source))


class TestNFA:
    def test_literal_accepts_only_itself(self):
        nfa = compile_nfa("a")
        assert nfa.accepts_word(["a"])
        assert not nfa.accepts_word([])
        assert not nfa.accepts_word(["a", "a"])
        assert not nfa.accepts_word(["b"])

    def test_concat(self):
        nfa = compile_nfa("a b")
        assert nfa.accepts_word(["a", "b"])
        assert not nfa.accepts_word(["a"])
        assert not nfa.accepts_word(["b", "a"])

    def test_union(self):
        nfa = compile_nfa("a | b")
        assert nfa.accepts_word(["a"])
        assert nfa.accepts_word(["b"])
        assert not nfa.accepts_word(["a", "b"])

    def test_star(self):
        nfa = compile_nfa("a*")
        for count in range(5):
            assert nfa.accepts_word(["a"] * count)
        assert not nfa.accepts_word(["b"])

    def test_plus_requires_one(self):
        nfa = compile_nfa("a+")
        assert not nfa.accepts_word([])
        assert nfa.accepts_word(["a"])
        assert nfa.accepts_word(["a", "a", "a"])

    def test_optional(self):
        nfa = compile_nfa("a?")
        assert nfa.accepts_word([])
        assert nfa.accepts_word(["a"])
        assert not nfa.accepts_word(["a", "a"])

    def test_fig3_language(self):
        nfa = compile_nfa("(a c* d) | b")
        assert nfa.accepts_word(["b"])
        assert nfa.accepts_word(["a", "d"])
        assert nfa.accepts_word(["a", "c", "c", "d"])
        assert not nfa.accepts_word(["a", "c"])
        assert not nfa.accepts_word(["a", "b"])

    def test_epsilon_closure_includes_self(self):
        nfa = compile_nfa("a")
        closure = nfa.epsilon_closure([nfa.start])
        assert nfa.start in closure

    def test_unknown_symbol_rejected_in_simulation(self):
        nfa = compile_nfa("a")
        assert not nfa.accepts_word(["z"])

    def test_invalid_structure_raises(self):
        with pytest.raises(AutomatonError):
            NFA(
                num_states=1,
                alphabet=frozenset("a"),
                transitions={0: {"a": {5}}},  # target out of range
                epsilon={},
                start=0,
                accepts=frozenset({0}),
            )


RE2 = "TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)"

RE2_ACCEPTED = [
    ["TC", "TD"],
    ["TC", "TY"],
    ["TC", "TCH", "TD"],
    ["TC", "TCH", "TCH", "TY"],
    ["TC", "TS", "TR", "TD"],
    ["TC", "TS", "TR", "TCH", "TY"],
    ["TC", "TCH", "TS", "TR", "TCH", "TS", "TR", "TD"],
]

RE2_REJECTED = [
    [],
    ["TC"],
    ["TD"],
    ["TC", "TR", "TD"],          # resume without suspend
    ["TC", "TS", "TD"],           # suspend without resume
    ["TC", "TD", "TD"],           # anything after termination
    ["TC", "TS", "TS", "TR", "TD"],  # double suspend
    ["TCH", "TD"],                # must start with create
]


class TestDFA:
    @pytest.mark.parametrize("word", RE2_ACCEPTED)
    def test_re2_accepts(self, word):
        dfa = nfa_to_dfa(compile_nfa(RE2))
        assert dfa.accepts_word(word)

    @pytest.mark.parametrize("word", RE2_REJECTED)
    def test_re2_rejects(self, word):
        dfa = nfa_to_dfa(compile_nfa(RE2))
        assert not dfa.accepts_word(word)

    def test_subset_construction_is_deterministic(self):
        dfa = nfa_to_dfa(compile_nfa("(a c* d) | b"))
        for state, arcs in dfa.transitions.items():
            assert len(arcs) == len(set(arcs))  # one target per symbol

    def test_dfa_start_is_zero(self):
        dfa = nfa_to_dfa(compile_nfa("a b c"))
        assert dfa.start == 0

    def test_outgoing_returns_copy(self):
        dfa = nfa_to_dfa(compile_nfa("a"))
        arcs = dfa.outgoing(dfa.start)
        arcs["poison"] = 99
        assert "poison" not in dfa.outgoing(dfa.start)

    def test_re2_subset_dfa_keeps_tc_and_tch_states_distinct(self):
        # Fig. 5 relies on TC-state and TCH-state being separate even
        # though they are language-equivalent (different probability rows).
        dfa = nfa_to_dfa(compile_nfa(RE2))
        after_tc = dfa.step(dfa.start, "TC")
        after_tch = dfa.step(after_tc, "TCH")
        assert after_tc != after_tch


class TestMinimize:
    def test_minimized_equivalent_on_fig3(self):
        dfa = nfa_to_dfa(compile_nfa("(a c* d) | b"))
        mini = minimize_dfa(dfa)
        words = [
            ["b"], ["a", "d"], ["a", "c", "d"], ["a"], ["d"], ["a", "c"],
            ["a", "c", "c", "c", "d"], ["b", "b"],
        ]
        for word in words:
            assert dfa.accepts_word(word) == mini.accepts_word(word)
        assert mini.num_states <= dfa.num_states

    def test_minimized_merges_equivalent_states(self):
        # (a|b) c and (b|a) c lead to the same suffix language after a/b.
        dfa = nfa_to_dfa(compile_nfa("(a | b) c"))
        mini = minimize_dfa(dfa)
        after_a = mini.step(mini.start, "a")
        after_b = mini.step(mini.start, "b")
        assert after_a == after_b

    def test_minimize_merges_re2_tc_tch(self):
        dfa = nfa_to_dfa(compile_nfa(RE2))
        mini = minimize_dfa(dfa)
        after_tc = mini.step(mini.start, "TC")
        after_tch = mini.step(after_tc, "TCH")
        assert after_tc == after_tch  # the merge Fig. 5 deliberately avoids

    def test_minimized_start_state_is_relabelled_consistently(self):
        dfa = nfa_to_dfa(compile_nfa("a b"))
        mini = minimize_dfa(dfa)
        assert mini.accepts_word(["a", "b"])
        assert not mini.accepts_word(["a"])
