"""Stateful testing of sync objects under random suspend/resume.

Tasks running lock-heavy programs are randomly suspended, resumed and
deleted while the kernel steps — the exact chaos pTest's merged
patterns produce.  Invariants: mutex ownership is always coherent, no
task is ever both owner and waiter, queue/resource wait lists only hold
BLOCKED tasks, and the system as a whole never corrupts kernel memory
accounting or panics (the correct-GC kernel must survive anything the
remote interface throws at it).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.pcore.programs import Acquire, Compute, Exit, Release, YieldCpu
from repro.pcore.services import ServiceCode, ServiceRequest
from repro.pcore.tcb import TaskState
from repro.sim.memory import SharedMemory

LOCKS = ("lock_a", "lock_b")


def locker_program(first: str, second: str, rounds: int):
    def program(ctx):
        del ctx
        for _ in range(rounds):
            yield Acquire(first)
            yield Compute(2)
            yield Acquire(second)
            yield Compute(1)
            yield Release(second)
            yield Release(first)
            yield YieldCpu()
        yield Exit(0)

    return program


class LockChaosMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.kernel = PCoreKernel(
            config=KernelConfig(max_tasks=6, gc_interval=4),
            shared_memory=SharedMemory(size=8 * 1024),
        )
        # Ordered acquisition (a before b): deadlock-free by design, so
        # any wedge an invariant sees is a kernel bug, not a workload one.
        self.kernel.register_program(
            "locker", locker_program("lock_a", "lock_b", rounds=3)
        )
        self.tick = 0
        self._next_priority = 1

    @rule()
    def create_locker(self) -> None:
        self.kernel.execute_service(
            ServiceRequest(
                service=ServiceCode.TC,
                priority=self._next_priority,
                program="locker",
            )
        )
        self._next_priority += 1

    @rule(tid=st.integers(min_value=0, max_value=8))
    def suspend(self, tid: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TS, target=tid)
        )

    @rule(tid=st.integers(min_value=0, max_value=8))
    def resume(self, tid: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TR, target=tid)
        )

    @rule(tid=st.integers(min_value=0, max_value=8))
    def delete(self, tid: int) -> None:
        self.kernel.execute_service(
            ServiceRequest(service=ServiceCode.TD, target=tid)
        )

    @rule(steps=st.integers(min_value=1, max_value=25))
    def run_kernel(self, steps: int) -> None:
        for _ in range(steps):
            self.kernel.step(self.tick)
            self.tick += 1

    # -- invariants -------------------------------------------------------

    @invariant()
    def never_panics(self) -> None:
        assert not self.kernel.is_halted(), self.kernel.panic_reason

    @invariant()
    def ownership_coherent(self) -> None:
        for resource in self.kernel.resources.values():
            owner = getattr(resource, "owner", None)
            if owner is not None:
                assert owner in self.kernel.tasks, (
                    f"{resource.name} owned by dead task {owner}"
                )
                assert owner not in resource.waiters
            for waiter in resource.waiters:
                task = self.kernel.tasks.get(waiter)
                assert task is not None
                assert task.state is TaskState.BLOCKED
                assert task.waiting_on == resource.name

    @invariant()
    def blocked_tasks_wait_on_something_real(self) -> None:
        for task in self.kernel.tasks.values():
            if task.state is TaskState.BLOCKED and not task.suspended_while_blocked:
                assert task.waiting_on is not None
                if not task.waiting_on.startswith("q:"):
                    resource = self.kernel.resources.get(task.waiting_on)
                    assert resource is not None
                    in_waiters = task.tid in resource.waiters
                    is_owner = getattr(resource, "owner", None) == task.tid
                    # A blocked task is queued, unless it was just
                    # promoted to owner and will wake next step.
                    assert in_waiters or is_owner, task.describe()

    @invariant()
    def memory_never_negative(self) -> None:
        assert self.kernel.memory.allocated_bytes >= 0
        assert self.kernel.memory.free_bytes >= 0

    def teardown(self) -> None:
        for tid in list(self.kernel.tasks):
            self.kernel.execute_service(
                ServiceRequest(service=ServiceCode.TD, target=tid)
            )
        self.kernel.gc.collect()
        assert self.kernel.memory.allocated_bytes == 0
        for resource in self.kernel.resources.values():
            assert getattr(resource, "owner", None) is None
            assert resource.waiters == []


LockChaosMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=50, deadline=None
)
TestLockChaos = LockChaosMachine.TestCase
