"""Tests for the multi-round adaptive campaign engine.

Covers the determinism contract (same seeds + policy => identical
round-by-round variant sets and rows at every ``(workers, batch_size,
warm/cold)`` execution configuration, replay-cell rounds included),
the warm-pool telemetry (``pool_id`` constant across rounds, one spawn
for the whole sequence), and the built-in refine policies as pure
functions of a :class:`RoundObservation`.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.ptest.adaptive import (
    POLICIES,
    AdaptiveCampaign,
    GridZoom,
    Repeat,
    ReplayFocus,
    RoundObservation,
    SuccessiveHalving,
)
from repro.ptest.campaign import CampaignRow, DetectionSample, grid_variants
from repro.ptest.pool import WorkerPool, get_pool, shutdown_pools
from repro.ptest.replay import ReplayRef
from repro.workloads.registry import ScenarioRef, scenario_ref


@pytest.fixture(autouse=True)
def _deterministic_pool_teardown():
    """Every test starts and ends without lingering shared pools."""
    shutdown_pools()
    yield
    shutdown_pools()


# -- observation builders for policy unit tests --------------------------------


def make_row(variant: str, runs: int, detections: int) -> CampaignRow:
    return CampaignRow(
        variant=variant,
        runs=runs,
        detections=detections,
        kinds=("deadlock",) if detections else (),
        mean_ticks_to_detection=200.0 if detections else 0.0,
        mean_commands=9.0,
    )


#: A parseable, re-mergeable interleaving of 2 philosopher-style pairs.
SAMPLE_DESCRIPTION = (
    "TC[p0#1] TC[p1#1] TS[p0#2] TS[p1#2] TR[p0#3] TR[p1#3]"
)


def make_observation(
    variants: dict[str, object],
    hits: dict[str, int],
    runs: int = 4,
    index: int = 0,
) -> RoundObservation:
    rows = tuple(
        make_row(name, runs, hits.get(name, 0)) for name in variants
    )
    detections = {
        name: tuple(
            DetectionSample(
                variant=name,
                seed=seed,
                kind="deadlock",
                merged_op="cyclic",
                merged_description=SAMPLE_DESCRIPTION,
            )
            for seed in range(hits.get(name, 0))
        )
        for name in variants
        if hits.get(name, 0)
    }
    return RoundObservation(
        index=index,
        variants=dict(variants),
        rows=rows,
        detections=detections,
        pool_id=None,
    )


class TestRoundObservation:
    def test_accessors(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40, 50]}, tasks=2
        )
        observation = make_observation(
            variants, {"spin[total_steps=50]": 3}
        )
        assert observation.total_detections == 3
        assert observation.rate("spin[total_steps=50]") == 0.75
        assert observation.rate("spin[total_steps=40]") == 0.0
        assert observation.best_variant() == "spin[total_steps=50]"
        assert observation.kind_counts() == {"deadlock": 3}
        assert len(list(observation.iter_samples())) == 3
        with pytest.raises(KeyError):
            observation.row("nope")

    def test_best_variant_breaks_ties_toward_earlier_rows(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40, 50]}, tasks=2
        )
        observation = make_observation(
            variants,
            {name: 2 for name in variants},
        )
        assert observation.best_variant() == next(iter(variants))

    def test_best_variant_none_without_detections(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40]}, tasks=2
        )
        assert make_observation(variants, {}).best_variant() is None


class TestGridZoom:
    def grid(self, values, param="total_steps", hits=None):
        variants = grid_variants(
            "spin", "clean_spin", {param: values}, tasks=2
        )
        return variants, make_observation(variants, hits or {})

    def test_narrows_window_around_best_cell(self):
        variants, observation = self.grid(
            [40, 50, 60, 70, 80],
            hits={"spin[total_steps=60]": 4, "spin[total_steps=40]": 1},
        )
        refined = GridZoom().refine(observation)
        assert refined == grid_variants(
            "spin", "clean_spin", {"total_steps": [50, 60, 70]}, tasks=2
        )

    def test_edge_best_cell_clamps_the_window(self):
        variants, observation = self.grid(
            [40, 50, 60, 70, 80], hits={"spin[total_steps=40]": 2}
        )
        refined = GridZoom().refine(observation)
        assert list(refined) == [
            "spin[total_steps=40]",
            "spin[total_steps=50]",
            "spin[total_steps=60]",
        ]

    def test_binary_param_pins_to_winner(self):
        variants = grid_variants(
            "phil", "philosophers", {"ordered": [False, True]}
        )
        observation = make_observation(
            variants, {"phil[ordered=False]": 4}
        )
        refined = GridZoom().refine(observation)
        assert refined == grid_variants(
            "phil", "philosophers", {"ordered": [False]}
        )

    def test_empty_detection_round_terminates(self):
        _variants, observation = self.grid([40, 50, 60])
        assert GridZoom().refine(observation) is None

    def test_fully_pinned_grid_terminates(self):
        variants = {"spin": scenario_ref("clean_spin", total_steps=40)}
        observation = make_observation(variants, {"spin": 1})
        assert GridZoom().refine(observation) is None

    def test_regrid_equal_in_refs_but_not_names_converges(self):
        # CLI grids arrive as raw strings ("ordered=false") while
        # refined rounds label from coerced ref params ("ordered=False");
        # convergence must compare refs, not spellings, or an identical
        # grid reruns once more under new names.
        variants = grid_variants(
            "phil", "philosophers", {"ordered": ["false", "true"]}
        )
        assert list(variants) == [
            "phil[ordered=false]", "phil[ordered=true]",
        ]
        observation = make_observation(
            variants, {name: 2 for name in variants}
        )
        # Zoom restricted to nothing: every param keeps its full list,
        # so the emitted refs equal the observed refs exactly.
        assert GridZoom(params=()).refine(observation) is None

    def test_unnarrowable_grid_terminates(self):
        # Two values, best first: the window is already [best]'s pair's
        # minimum — one zoom pins it, the next refine must converge.
        variants, observation = self.grid(
            [40, 50], hits={"spin[total_steps=40]": 2}
        )
        refined = GridZoom().refine(observation)
        assert list(refined) == ["spin[total_steps=40]"]
        follow_up = make_observation(
            refined, {"spin[total_steps=40]": 2}, index=1
        )
        assert GridZoom().refine(follow_up) is None

    def test_params_restricts_zooming(self):
        variants = grid_variants(
            "spin",
            "clean_spin",
            {"total_steps": [40, 50, 60], "tasks": [2, 3]},
        )
        observation = make_observation(
            variants, {"spin[total_steps=50,tasks=3]": 4}
        )
        refined = GridZoom(params=("total_steps",)).refine(observation)
        # total_steps narrowed (window 2 of 3, best at the window's
        # left edge), tasks kept in full.
        assert refined == grid_variants(
            "spin",
            "clean_spin",
            {"tasks": [2, 3], "total_steps": [50, 60]},
        )

    def test_unknown_zoom_param_rejected(self):
        _variants, observation = self.grid([40, 50], hits={"spin[total_steps=40]": 1})
        with pytest.raises(ConfigError, match="not parameters"):
            GridZoom(params=("nope",)).refine(observation)

    def test_non_ref_variants_rejected(self):
        observation = make_observation(
            {"raw": lambda seed: None}, {"raw": 1}
        )
        with pytest.raises(ConfigError, match="ScenarioRef"):
            GridZoom().refine(observation)

    def test_mixed_scenarios_rejected(self):
        variants = {
            "a": scenario_ref("clean_spin", total_steps=40),
            "b": scenario_ref("philosophers"),
        }
        observation = make_observation(variants, {"a": 1})
        with pytest.raises(ConfigError, match="single-scenario"):
            GridZoom().refine(observation)

    def test_heterogeneous_param_sets_rejected(self):
        # Hand-registered variants whose refs do not form a grid: the
        # winner lacks a parameter the others sweep — a clean error,
        # not a KeyError from inside the narrowing arithmetic.
        variants = {
            "a": scenario_ref("clean_spin", total_steps=40),
            "b": scenario_ref("clean_spin", total_steps=50, tasks=2),
            "c": scenario_ref("clean_spin", total_steps=50, tasks=3),
        }
        observation = make_observation(variants, {"a": 2})
        with pytest.raises(ConfigError, match="same\\s+parameter set"):
            GridZoom().refine(observation)


class TestSuccessiveHalving:
    def test_drops_bottom_half_keeping_original_order(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40, 50, 60, 70, 80]}
        )
        hits = {
            "spin[total_steps=40]": 1,
            "spin[total_steps=50]": 4,
            "spin[total_steps=70]": 3,
        }
        refined = SuccessiveHalving().refine(
            make_observation(variants, hits)
        )
        # ceil(5/2)=3 survivors, re-emitted in original variant order.
        assert list(refined) == [
            "spin[total_steps=40]",
            "spin[total_steps=50]",
            "spin[total_steps=70]",
        ]

    def test_rate_ties_break_toward_earlier_rows(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40, 50, 60, 70]}
        )
        hits = {name: 2 for name in variants}
        refined = SuccessiveHalving().refine(
            make_observation(variants, hits)
        )
        assert list(refined) == list(variants)[:2]

    def test_empty_detection_round_terminates(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40, 50]}
        )
        assert (
            SuccessiveHalving().refine(make_observation(variants, {}))
            is None
        )

    def test_single_variant_terminates(self):
        variants = {"spin": scenario_ref("clean_spin")}
        observation = make_observation(variants, {"spin": 2})
        assert SuccessiveHalving().refine(observation) is None

    def test_min_variants_floor(self):
        variants = grid_variants(
            "spin", "clean_spin", {"total_steps": [40, 50, 60]}
        )
        hits = {name: 1 for name in variants}
        observation = make_observation(variants, hits)
        assert (
            SuccessiveHalving(min_variants=3).refine(observation) is None
        )
        with pytest.raises(ConfigError, match="min_variants"):
            SuccessiveHalving(min_variants=0)


class TestReplayFocus:
    def test_detections_become_replay_cells(self):
        base = scenario_ref("philosophers", chunk=1)
        observation = make_observation(
            {"phil": base}, {"phil": 2}, runs=2
        )
        refined = ReplayFocus(
            ops=("cyclic", "round_robin"), max_sources=2
        ).refine(observation)
        assert list(refined) == [
            "replay[phil@s0/cyclic]",
            "replay[phil@s0/round_robin]",
            "replay[phil@s1/cyclic]",
            "replay[phil@s1/round_robin]",
        ]
        for ref in refined.values():
            assert isinstance(ref, ReplayRef)
            assert ref.scenario == base
            # Re-merged patterns cover exactly the recorded sources.
            assert ref.merged().per_pattern_counts() == {0: 3, 1: 3}

    def test_max_sources_bounds_the_fan_out(self):
        base = scenario_ref("philosophers")
        observation = make_observation({"phil": base}, {"phil": 4})
        refined = ReplayFocus(ops=("cyclic",), max_sources=1).refine(
            observation
        )
        assert list(refined) == ["replay[phil@s0/cyclic]"]

    def test_replaying_a_replay_keeps_the_base_scenario(self):
        base = scenario_ref("philosophers")
        first = ReplayFocus(ops=("cyclic",)).refine(
            make_observation({"phil": base}, {"phil": 1})
        )
        (name,) = first
        second = ReplayFocus(ops=("cyclic",)).refine(
            make_observation(dict(first), {name: 1}, index=1)
        )
        for ref in second.values():
            assert ref.scenario == base

    def test_empty_detection_round_terminates(self):
        observation = make_observation(
            {"phil": scenario_ref("philosophers")}, {}
        )
        assert ReplayFocus().refine(observation) is None

    def test_non_ref_variant_rejected(self):
        observation = make_observation(
            {"raw": lambda seed: None}, {"raw": 1}
        )
        with pytest.raises(ConfigError, match="ReplayRef"):
            ReplayFocus().refine(observation)

    def test_validation(self):
        with pytest.raises(ConfigError, match="merge op"):
            ReplayFocus(ops=())
        with pytest.raises(ConfigError, match="duplicate"):
            # A repeated op would mint colliding variant names and
            # silently overwrite half the replay cells.
            ReplayFocus(ops=("cyclic", "cyclic"))
        with pytest.raises(ConfigError, match="max_sources"):
            ReplayFocus(max_sources=0)


class TestPolicyRegistry:
    def test_builtins_registered(self):
        assert set(POLICIES) == {
            "grid_zoom", "halving", "replay", "repeat",
        }
        for factory in POLICIES.values():
            policy = factory()
            assert hasattr(policy, "refine")


# -- the engine ----------------------------------------------------------------


def philosophers_adaptive(policy, rounds=3, **kwargs) -> AdaptiveCampaign:
    campaign = AdaptiveCampaign(
        seeds=(0, 1), rounds=rounds, policy=policy, **kwargs
    )
    campaign.add_grid("phil", "philosophers", {"chunk": [1, 2]})
    return campaign


class TestAdaptiveCampaignEngine:
    def test_config_validation(self):
        with pytest.raises(ConfigError, match="no variants"):
            AdaptiveCampaign(policy=Repeat()).run()
        campaign = philosophers_adaptive(policy=None)
        with pytest.raises(ConfigError, match="refine policy"):
            campaign.run()
        bad_rounds = philosophers_adaptive(Repeat())
        bad_rounds.rounds = 0
        with pytest.raises(ConfigError, match="rounds"):
            bad_rounds.run()
        with pytest.raises(ValueError, match="already registered"):
            philosophers_adaptive(Repeat()).add_scenario(
                "phil[chunk=1]", "philosophers"
            )

    def test_round_history_and_early_stop(self):
        result = philosophers_adaptive(SuccessiveHalving()).run()
        assert result.variant_history() == [
            ("phil[chunk=1]", "phil[chunk=2]"),
            ("phil[chunk=1]",),
        ]
        # Two variants can only halve once; the round-3 budget is
        # unused and the single-variant round stops the campaign.
        assert result.stopped_early
        assert [r.index for r in result.rounds] == [0, 1]
        assert result.final_rows == result.rounds[-1].rows
        assert all(row.rate == 1.0 for row in result.final_rows)

    def test_round_budget_caps_before_policy_stops(self):
        result = philosophers_adaptive(Repeat(), rounds=2).run()
        assert len(result.rounds) == 2
        assert not result.stopped_early
        assert result.rounds[0].rows == result.rounds[1].rows

    def test_generator_seed_source_survives_every_round(self):
        # seeds is typed Iterable: a generator must not be exhausted by
        # round 1 leaving later rounds with zero cells.
        campaign = AdaptiveCampaign(
            seeds=(seed for seed in range(2)),
            rounds=2,
            policy=Repeat(),
        )
        campaign.add_scenario("phil", "philosophers")
        result = campaign.run()
        assert [r.rows[0].runs for r in result.rounds] == [2, 2]

    def test_empty_detection_round_stops_cleanly(self):
        for policy in (GridZoom(), SuccessiveHalving(), ReplayFocus()):
            campaign = AdaptiveCampaign(
                seeds=(0, 1), rounds=3, policy=policy
            )
            campaign.add_grid(
                "spin", "clean_spin", {"total_steps": [40, 50]}, tasks=2
            )
            result = campaign.run()
            assert len(result.rounds) == 1
            assert result.stopped_early
            assert result.rounds[0].total_detections == 0
            assert result.rounds[0].detections == {}

    def test_detections_feed_the_observation(self):
        result = philosophers_adaptive(Repeat(), rounds=1).run()
        observation = result.rounds[0]
        assert observation.total_detections == 4
        samples = list(observation.iter_samples())
        assert [s.seed for s in samples] == [0, 1, 0, 1]
        assert {s.kind for s in samples} == {"deadlock"}
        assert all(s.merged_description for s in samples)

    def test_capture_per_variant_bounds_samples(self):
        campaign = AdaptiveCampaign(
            seeds=(0, 1, 2),
            rounds=1,
            policy=Repeat(),
            capture_per_variant=1,
        )
        campaign.add_scenario("phil", "philosophers")
        result = campaign.run()
        assert len(result.rounds[0].detections["phil"]) == 1
        assert result.rounds[0].row("phil").detections == 3

    def test_user_sink_sees_every_round(self):
        seen = []

        class _Recorder:
            def accept(self, cell, result):
                seen.append((cell.variant, cell.seed))

        result = philosophers_adaptive(SuccessiveHalving()).run(
            sink=_Recorder()
        )
        expected = sum(
            len(r.variants) * 2 for r in result.rounds
        )
        assert len(seen) == expected

    def test_replay_rounds_rerun_detecting_interleavings(self):
        result = philosophers_adaptive(
            ReplayFocus(ops=("cyclic",), max_sources=1), rounds=2
        ).run()
        assert len(result.rounds) == 2
        replay_round = result.rounds[1]
        assert all(
            isinstance(ref, ReplayRef)
            for ref in replay_round.variants.values()
        )
        # The replayed interleaving re-finds the deadlock on every seed.
        assert all(row.rate == 1.0 for row in replay_round.rows)
        assert all(
            row.kinds == ("deadlock",) for row in replay_round.rows
        )


class TestWarmPoolTelemetry:
    def test_pool_id_stable_across_rounds_and_one_spawn(self):
        with WorkerPool(2) as pool:
            campaign = philosophers_adaptive(
                SuccessiveHalving(), workers=2, pool=pool
            )
            result = campaign.run()
            assert len(result.rounds) == 2
            assert result.pool_stable
            assert result.pool_ids[0] is not None
            assert len(set(result.pool_ids)) == 1
            assert pool.spawns == 1  # round 2 paid no pool spawn

    def test_shared_pool_acquired_once_and_reused_across_runs(self):
        campaign = philosophers_adaptive(SuccessiveHalving(), workers=2)
        first = campaign.run()
        second = philosophers_adaptive(
            SuccessiveHalving(), workers=2
        ).run()
        assert first.pool_stable and second.pool_stable
        # Both adaptive runs rode the same warm shared pool.
        assert set(first.pool_ids) == set(second.pool_ids)
        assert get_pool(2).spawns == 1

    def test_serial_rounds_report_no_pool(self):
        result = philosophers_adaptive(SuccessiveHalving()).run()
        assert result.pool_ids == (None, None)
        assert result.pool_stable  # trivially: nothing to churn


class TestCrossConfigDeterminism:
    """Same seeds + policy => identical rounds on every execution path.

    The matrix the acceptance criteria name: ``workers in {1, None}``
    (with ``None`` meaning pool-driven parallelism when a pool is
    given) x ``batch_size in {1, None}`` x warm vs fresh pool — with a
    policy whose later rounds contain merged-pattern replay cells.
    """

    POLICY = staticmethod(
        lambda: ReplayFocus(ops=("cyclic", "round_robin"), max_sources=1)
    )

    def run_config(self, workers, batch_size, pool):
        campaign = philosophers_adaptive(
            self.POLICY(),
            rounds=3,
            workers=workers,
            batch_size=batch_size,
            pool=pool,
        )
        return campaign.run()

    @staticmethod
    def fingerprint(result):
        return (
            [dict(r.variants) for r in result.rounds],
            [r.rows for r in result.rounds],
            [r.detections for r in result.rounds],
            result.stopped_early,
        )

    def test_rounds_identical_across_all_configurations(self):
        reference = self.run_config(workers=1, batch_size=None, pool=None)
        baseline = self.fingerprint(reference)
        assert len(reference.rounds) == 3  # replay cells kept detecting
        for batch_size in (1, None):
            serial = self.run_config(
                workers=1, batch_size=batch_size, pool=None
            )
            assert self.fingerprint(serial) == baseline, (
                f"serial batch_size={batch_size}"
            )
            with WorkerPool(2) as pool:
                cold = self.run_config(
                    workers=None, batch_size=batch_size, pool=pool
                )
                warm = self.run_config(
                    workers=None, batch_size=batch_size, pool=pool
                )
            assert self.fingerprint(cold) == baseline, (
                f"cold pool batch_size={batch_size}"
            )
            assert self.fingerprint(warm) == baseline, (
                f"warm pool batch_size={batch_size}"
            )

    def test_explicit_worker_counts_agree_too(self):
        reference = self.fingerprint(
            self.run_config(workers=1, batch_size=None, pool=None)
        )
        parallel = self.run_config(workers=2, batch_size=1, pool=None)
        assert self.fingerprint(parallel) == reference
