"""Tests for the pCore PFA of Fig. 5 and RE (2)."""

from __future__ import annotations

import pytest

from repro.automata.analysis import expected_pattern_length
from repro.automata.sampling import PatternSampler
from repro.ptest.generator import PatternGenerator
from repro.ptest.pcore_model import (
    PCORE_EDGES,
    PCORE_REGULAR_EXPRESSION,
    PCORE_SERVICES,
    pcore_distribution,
    pcore_pfa,
    reweighted_pcore_pfa,
    uniform_pcore_pfa,
)


class TestFig5Structure:
    def test_seven_states(self):
        assert pcore_pfa().num_states == 7

    def test_fourteen_edges_thirteen_labelled(self):
        # 13 labelled edges a..m plus the initial start->TC arc.
        assert len(PCORE_EDGES) == 14

    def test_rows_are_stochastic(self):
        pfa = pcore_pfa()
        pfa.validate()  # Eq. (1) holds by construction

    def test_paper_probability_values(self):
        pfa = pcore_pfa()
        by_label = {pfa.label(s): s for s in range(pfa.num_states)}
        tc = by_label["TC"]
        row = {t.symbol: t.probability for t in pfa.outgoing(tc)}
        assert row == {
            "TCH": pytest.approx(0.6),
            "TS": pytest.approx(0.1),
            "TY": pytest.approx(0.1),
            "TD": pytest.approx(0.2),
        }
        tr = by_label["TR"]
        row = {t.symbol: t.probability for t in pfa.outgoing(tr)}
        assert row == {
            "TS": pytest.approx(0.1),
            "TCH": pytest.approx(0.4),
            "TD": pytest.approx(0.3),
            "TY": pytest.approx(0.2),
        }

    def test_ts_always_goes_to_tr(self):
        pfa = pcore_pfa()
        by_label = {pfa.label(s): s for s in range(pfa.num_states)}
        arcs = pfa.outgoing(by_label["TS"])
        assert len(arcs) == 1
        assert arcs[0].symbol == "TR"
        assert arcs[0].probability == 1.0

    def test_td_ty_are_absorbing_finals(self):
        pfa = pcore_pfa()
        by_label = {pfa.label(s): s for s in range(pfa.num_states)}
        for label in ("TD", "TY"):
            assert pfa.is_final(by_label[label])
            assert pfa.is_absorbing(by_label[label])


class TestLanguageEquivalence:
    def test_every_fig5_walk_matches_re2(self):
        """The hand-built PFA's samples are exactly RE (2) words."""
        generator = PatternGenerator(
            regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=0
        )
        sampler = PatternSampler(pcore_pfa(), seed=123)
        for _ in range(300):
            walk = sampler.sample_to_final()
            assert generator.dfa.accepts_word(list(walk.symbols)), walk.symbols

    def test_every_re2_sample_walks_fig5(self):
        """And vice versa: RE (2) samples walk the Fig. 5 automaton."""
        generator = PatternGenerator(
            regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=7
        )
        pfa = pcore_pfa()
        for _ in range(300):
            pattern = generator.generate(12)
            assert pfa.walk_probability(pattern.symbols) > 0.0

    def test_juxtaposed_paper_notation_parses_identically(self):
        compact = PatternGenerator(
            regex="TC((TCH)* | TSTR(TCH)*)*(TD$ | TY$)",
            alphabet=PCORE_SERVICES,
            seed=0,
        )
        spaced = PatternGenerator(
            regex=PCORE_REGULAR_EXPRESSION, alphabet=PCORE_SERVICES, seed=0
        )
        for word in (
            ["TC", "TD"],
            ["TC", "TS", "TR", "TY"],
            ["TC", "TCH", "TS", "TR", "TD"],
            ["TC", "TR", "TD"],
        ):
            assert compact.dfa.accepts_word(word) == spaced.dfa.accepts_word(word)


class TestDistributionVariants:
    def test_pcore_distribution_covers_all_labelled_rows(self):
        dist = pcore_distribution()
        assert (("TC", "TCH")) in dist
        assert dist[("TR", "TD")] == pytest.approx(0.3)
        assert len(dist) == 14

    def test_uniform_variant_rows_sum_to_one(self):
        uniform_pcore_pfa().validate()

    def test_uniform_differs_from_paper(self):
        paper = pcore_pfa()
        uniform = uniform_pcore_pfa()
        by_label = {paper.label(s): s for s in range(7)}
        tc = by_label["TC"]
        paper_row = {t.symbol: t.probability for t in paper.outgoing(tc)}
        uniform_row = {t.symbol: t.probability for t in uniform.outgoing(tc)}
        assert paper_row != uniform_row
        assert uniform_row["TCH"] == pytest.approx(0.25)

    def test_reweighted_overrides_and_normalises(self):
        pfa = reweighted_pcore_pfa({("TC", "TD"): 8.0})
        by_label = {pfa.label(s): s for s in range(7)}
        row = {t.symbol: t.probability for t in pfa.outgoing(by_label["TC"])}
        # TD got weight 8 against the paper's 0.6+0.1+0.1 for the rest.
        assert row["TD"] == pytest.approx(8.0 / 8.8)
        pfa.validate()

    def test_expected_lifecycle_length_reasonable(self):
        # A task lifecycle under the paper's distribution: a handful of
        # services, not hundreds (sanity anchor for the E3 bench).
        value = expected_pattern_length(pcore_pfa())
        assert 2.0 < value < 15.0
