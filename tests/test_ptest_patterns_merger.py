"""Tests for test patterns, the generator and the merger."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.ptest.generator import PatternGenerator
from repro.ptest.merger import MERGE_OPS, PatternMerger, register_merge_op
from repro.ptest.patterns import MergedPattern, PatternCommand, TestPattern
from repro.ptest.pcore_model import PCORE_REGULAR_EXPRESSION, PCORE_SERVICES, pcore_pfa


def make_patterns(symbol_lists) -> list[TestPattern]:
    return [
        TestPattern(pattern_id=index, symbols=tuple(symbols))
        for index, symbols in enumerate(symbol_lists)
    ]


class TestTestPattern:
    def test_subsequence_after(self):
        pattern = TestPattern(pattern_id=0, symbols=("TC", "TS", "TR"))
        assert pattern.subsequence_after(0) == ("TC", "TS", "TR")
        assert pattern.subsequence_after(2) == ("TR",)
        assert pattern.subsequence_after(3) == ()

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            TestPattern(pattern_id=-1, symbols=("TC",))
        pattern = TestPattern(pattern_id=0, symbols=("TC",))
        with pytest.raises(ConfigError):
            pattern.subsequence_after(-1)

    def test_describe(self):
        pattern = TestPattern(pattern_id=0, symbols=("TC", "TD"))
        assert pattern.describe() == "TC->TD"


class TestGenerator:
    def test_generates_from_re2(self):
        generator = PatternGenerator(
            regex=PCORE_REGULAR_EXPRESSION,
            alphabet=PCORE_SERVICES,
            seed=0,
        )
        batch = generator.generate_batch(10, 8)
        assert len(batch) == 10
        for pattern in batch:
            assert pattern.symbols[0] == "TC"
            assert generator.accepts(pattern.symbols)

    def test_from_pfa_uses_paper_distribution(self):
        generator = PatternGenerator.from_pfa(pcore_pfa(), seed=1)
        batch = generator.generate_batch(200, 8)
        # With the Fig. 5 distribution TCH dominates after TC (p=0.6).
        second_symbols = [p.symbols[1] for p in batch if len(p) > 1]
        tch_share = second_symbols.count("TCH") / len(second_symbols)
        assert tch_share == pytest.approx(0.6, abs=0.1)

    def test_deterministic_under_seed(self):
        first = PatternGenerator.from_pfa(pcore_pfa(), seed=5).generate_batch(5, 6)
        second = PatternGenerator.from_pfa(pcore_pfa(), seed=5).generate_batch(5, 6)
        assert [p.symbols for p in first] == [p.symbols for p in second]

    def test_pattern_ids_are_batch_indices(self):
        generator = PatternGenerator.from_pfa(pcore_pfa(), seed=0)
        batch = generator.generate_batch(4, 5)
        assert [p.pattern_id for p in batch] == [0, 1, 2, 3]

    def test_size_validation(self):
        generator = PatternGenerator.from_pfa(pcore_pfa(), seed=0)
        with pytest.raises(ConfigError):
            generator.generate(0)
        with pytest.raises(ConfigError):
            generator.generate_batch(0, 5)


class TestMergerOps:
    def test_round_robin_alternates(self):
        patterns = make_patterns([("A1", "A2"), ("B1", "B2")])
        merged = PatternMerger(op="round_robin").merge(patterns)
        assert [c.symbol for c in merged] == ["A1", "B1", "A2", "B2"]

    def test_round_robin_handles_uneven_lengths(self):
        patterns = make_patterns([("A1", "A2", "A3"), ("B1",)])
        merged = PatternMerger(op="round_robin").merge(patterns)
        assert [c.symbol for c in merged] == ["A1", "B1", "A2", "A3"]

    def test_burst_concatenates(self):
        patterns = make_patterns([("A1", "A2"), ("B1", "B2")])
        merged = PatternMerger(op="burst").merge(patterns)
        assert [c.symbol for c in merged] == ["A1", "A2", "B1", "B2"]

    def test_cyclic_chunks(self):
        patterns = make_patterns([("A1", "A2", "A3", "A4"), ("B1", "B2", "B3", "B4")])
        merged = PatternMerger(op="cyclic", chunk=2).merge(patterns)
        assert [c.symbol for c in merged] == [
            "A1", "A2", "B1", "B2", "A3", "A4", "B3", "B4",
        ]

    def test_cyclic_chunk_validation(self):
        patterns = make_patterns([("A1",)])
        with pytest.raises(ConfigError):
            PatternMerger(op="cyclic", chunk=0).merge(patterns)

    def test_random_is_seed_deterministic(self):
        patterns = make_patterns([("A1", "A2", "A3"), ("B1", "B2", "B3")])
        first = PatternMerger(op="random", seed=7).merge(patterns)
        second = PatternMerger(op="random", seed=7).merge(patterns)
        assert [c.symbol for c in first] == [c.symbol for c in second]

    def test_weighted_prefers_longer_patterns_early(self):
        patterns = make_patterns([("A",) * 50, ("B",)])
        merged = PatternMerger(op="weighted", seed=3).merge(patterns)
        # The single B lands somewhere, but A dominates the head.
        assert merged.commands[0].symbol == "A"

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            PatternMerger(op="no_such_op")

    def test_register_custom_op(self):
        def reverse_burst(patterns, rng, chunk):
            order = []
            for pattern in reversed(patterns):
                order.extend([pattern.pattern_id] * len(pattern))
            return order

        register_merge_op("reverse_burst_test", reverse_burst)
        try:
            patterns = make_patterns([("A1",), ("B1",)])
            merged = PatternMerger(op="reverse_burst_test").merge(patterns)
            assert [c.symbol for c in merged] == ["B1", "A1"]
        finally:
            del MERGE_OPS["reverse_burst_test"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_merge_op("round_robin", lambda p, r, c: [])

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigError):
            PatternMerger().merge([])

    def test_duplicate_ids_rejected(self):
        patterns = [
            TestPattern(pattern_id=0, symbols=("A",)),
            TestPattern(pattern_id=0, symbols=("B",)),
        ]
        with pytest.raises(ConfigError):
            PatternMerger().merge(patterns)


class TestMergedPatternValidation:
    def test_validate_catches_reordering(self):
        pattern = TestPattern(pattern_id=0, symbols=("A1", "A2"))
        commands = [
            PatternCommand(
                symbol="A2", pattern_id=0, sequence_in_pattern=2, position=0
            ),
            PatternCommand(
                symbol="A1", pattern_id=0, sequence_in_pattern=1, position=1
            ),
        ]
        merged = MergedPattern(commands=commands, op="bogus", sources=[pattern])
        with pytest.raises(ConfigError):
            merged.validate()

    def test_validate_catches_missing_symbols(self):
        pattern = TestPattern(pattern_id=0, symbols=("A1", "A2"))
        commands = [
            PatternCommand(
                symbol="A1", pattern_id=0, sequence_in_pattern=1, position=0
            ),
        ]
        merged = MergedPattern(commands=commands, op="bogus", sources=[pattern])
        with pytest.raises(ConfigError):
            merged.validate()

    def test_per_pattern_counts(self):
        patterns = make_patterns([("A1", "A2"), ("B1",)])
        merged = PatternMerger(op="round_robin").merge(patterns)
        assert merged.per_pattern_counts() == {0: 2, 1: 1}


@given(
    op=st.sampled_from(["round_robin", "random", "cyclic", "burst", "weighted"]),
    lengths=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=10_000),
    chunk=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=200, deadline=None)
def test_every_merge_op_produces_a_valid_interleaving(op, lengths, seed, chunk):
    """Property: any op's output passes MergedPattern.validate — i.e. it
    is a true order-preserving interleaving containing every symbol."""
    patterns = [
        TestPattern(
            pattern_id=index,
            symbols=tuple(f"p{index}s{i}" for i in range(length)),
        )
        for index, length in enumerate(lengths)
    ]
    merged = PatternMerger(op=op, seed=seed, chunk=chunk).merge(patterns)
    assert len(merged) == sum(lengths)  # validate() ran inside merge()
