"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.automata.pfa import PFA, Transition
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.sim.memory import SharedMemory


@pytest.fixture
def fig3_pfa() -> PFA:
    """The paper's Fig. 3 PFA: three states, alphabet {a,b,c,d},
    (ac*d)|b with P(a)=0.6, P(b)=0.4, P(c)=0.3, P(d)=0.7."""
    transitions = {
        0: {
            "a": Transition(source=0, symbol="a", target=1, probability=0.6),
            "b": Transition(source=0, symbol="b", target=2, probability=0.4),
        },
        1: {
            "c": Transition(source=1, symbol="c", target=1, probability=0.3),
            "d": Transition(source=1, symbol="d", target=2, probability=0.7),
        },
    }
    return PFA(
        num_states=3,
        alphabet=frozenset("abcd"),
        transitions=transitions,
        start=0,
        accepts=frozenset({2}),
        state_labels={0: "q0", 1: "q1", 2: "q2"},
    )


@pytest.fixture
def kernel() -> PCoreKernel:
    """A fresh pCore kernel with shared memory attached."""
    return PCoreKernel(
        config=KernelConfig(), shared_memory=SharedMemory(size=64 * 1024)
    )


