"""Shared fixtures for the test suite.

Also installs a per-test wall-clock timeout (SIGALRM-based, main
thread only): the suite exercises watchdog/hang-recovery machinery on
purpose-built hung workers, and a regression that reintroduces a real
hang must fail tier-1 loudly instead of wedging CI until the job-level
kill.  Override the budget with ``REPRO_TEST_TIMEOUT`` (seconds; ``0``
disables) — the default is far above any legitimate test's runtime.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.automata.pfa import PFA, Transition
from repro.pcore.kernel import KernelConfig, PCoreKernel
from repro.sim.memory import SharedMemory

#: Seconds one test (setup + call + teardown) may take before it is
#: interrupted.  Generous: the slowest legitimate tests (cold pool
#: spawns under coverage) finish in well under a minute.
_DEFAULT_TEST_TIMEOUT = 300.0


def _test_timeout() -> float:
    try:
        return float(os.environ.get("REPRO_TEST_TIMEOUT", ""))
    except ValueError:
        return _DEFAULT_TEST_TIMEOUT


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    """Arm a SIGALRM watchdog around each test.

    SIGALRM (not a watcher thread) so the hung test itself raises —
    with a stack trace pointing at the hang — rather than being
    reported dead from the outside.  Skipped off the main thread and on
    platforms without SIGALRM, where the alarm cannot be delivered.
    """
    timeout = _test_timeout()
    if (
        timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test {item.nodeid} exceeded the {timeout:.0f}s per-test "
            "watchdog (REPRO_TEST_TIMEOUT to adjust); a wedged worker "
            "pool or reintroduced hang is the usual culprit"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def fig3_pfa() -> PFA:
    """The paper's Fig. 3 PFA: three states, alphabet {a,b,c,d},
    (ac*d)|b with P(a)=0.6, P(b)=0.4, P(c)=0.3, P(d)=0.7."""
    transitions = {
        0: {
            "a": Transition(source=0, symbol="a", target=1, probability=0.6),
            "b": Transition(source=0, symbol="b", target=2, probability=0.4),
        },
        1: {
            "c": Transition(source=1, symbol="c", target=1, probability=0.3),
            "d": Transition(source=1, symbol="d", target=2, probability=0.7),
        },
    }
    return PFA(
        num_states=3,
        alphabet=frozenset("abcd"),
        transitions=transitions,
        start=0,
        accepts=frozenset({2}),
        state_labels={0: "q0", 1: "q1", 2: "q2"},
    )


@pytest.fixture
def kernel() -> PCoreKernel:
    """A fresh pCore kernel with shared memory attached."""
    return PCoreKernel(
        config=KernelConfig(), shared_memory=SharedMemory(size=64 * 1024)
    )


