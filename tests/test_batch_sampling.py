"""The vectorized batch sampler's bit-identity contract.

:class:`~repro.automata.batch.BatchSampler` promises that cell ``i``
of every draw equals ``PatternSampler(pfa, seed=seeds[i])`` having
drawn the same sequence — symbols, states, log-probability and
restarts all compare equal — on the numpy fast path and the scalar
fallback alike.  These tests sweep that promise over seed classes
(single-word, multi-word, negative, word-boundary), sizes, both
``on_final`` modes and multi-round continuations, then cover the
plumbing around it: the cached :func:`packed_rows` packing, the
``REPRO_NO_NUMPY`` escape hatch, the explicit-request
:class:`ConfigError`, the shared-batch generator bridge, and campaign
rows staying identical at every ``batch_sampling`` setting.
"""

from __future__ import annotations

import pickle

import pytest

from repro.automata.batch import (
    NO_NUMPY_ENV,
    BatchSampler,
    numpy_available,
    numpy_or_none,
    packed_rows,
    require_numpy,
)
from repro.automata.compiled import CompiledPFA
from repro.automata.sampling import PatternSampler
from repro.errors import ConfigError
from repro.ptest.campaign import Campaign
from repro.ptest.executor import CellExecutor, WorkCell
from repro.ptest.generator import SharedPatternBatch
from repro.ptest.pcore_model import pcore_pfa
from repro.ptest.pool import shutdown_pools
from repro.workloads.registry import scenario_ref

#: One seed per interesting RNG-seeding class: zero, small positive,
#: small negative (single 32-bit word, CPython-side draws), the 2**32
#: word boundary, a two-word value, a negative multi-word value and a
#: three-word value (numpy ``RandomState`` draws where available).
SEED_MATRIX = (
    0,
    1,
    -5,
    2**31,
    2**32,
    2**32 + 123,
    -(2**40 + 7),
    (1 << 96) + 17,
)


@pytest.fixture(scope="module")
def compiled() -> CompiledPFA:
    return CompiledPFA.from_pfa(pcore_pfa())


def assert_patterns_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.symbols == want.symbols
        assert got.states == want.states
        assert got.log_probability == want.log_probability
        assert got.restarts == want.restarts


class TestBitIdentity:
    @pytest.mark.parametrize("on_final", ["stop", "restart"])
    @pytest.mark.parametrize("size", [1, 2, 7, 40])
    def test_matches_scalar_walks(self, compiled, on_final, size):
        scalars = [
            PatternSampler(compiled, seed=seed, on_final=on_final)
            for seed in SEED_MATRIX
        ]
        batch = BatchSampler(compiled, SEED_MATRIX, on_final=on_final)
        for _ in range(3):
            assert_patterns_equal(
                batch.sample(size),
                [sampler.sample(size) for sampler in scalars],
            )

    @pytest.mark.parametrize("on_final", ["stop", "restart"])
    def test_sample_many_continues_per_cell_streams(
        self, compiled, on_final
    ):
        seeds = SEED_MATRIX[:4]
        scalars = [
            PatternSampler(compiled, seed=seed, on_final=on_final)
            for seed in seeds
        ]
        batch = BatchSampler(compiled, seeds, on_final=on_final)
        many = batch.sample_many(6, 8)
        assert len(many) == len(seeds)
        for cell, sampler in enumerate(scalars):
            assert_patterns_equal(many[cell], sampler.sample_many(6, 8))
        # The streams keep continuing after sample_many, too.
        assert_patterns_equal(
            batch.sample(5), [sampler.sample(5) for sampler in scalars]
        )

    def test_varying_sizes_across_rounds(self, compiled):
        seeds = (2**40 + 1, 3, -(2**33))
        scalars = [PatternSampler(compiled, seed=seed) for seed in seeds]
        batch = BatchSampler(compiled, seeds)
        for size in (1, 12, 3, 40, 2):
            assert_patterns_equal(
                batch.sample(size),
                [sampler.sample(size) for sampler in scalars],
            )

    def test_accepts_plain_pfa_and_compiles_once(self):
        pfa = pcore_pfa()
        batch = BatchSampler(pfa, (7, 8))
        scalar = PatternSampler(batch.compiled, seed=7)
        assert_patterns_equal([batch.sample(9)[0]], [scalar.sample(9)])

    def test_none_seeds_run_but_are_not_replayable(self, compiled):
        # None cells get fresh entropy (exactly like the scalar
        # sampler's seed=None): nothing to compare bit-for-bit, but the
        # walks must still be valid prefix walks, and the *seeded*
        # cells in the same batch must stay on their scalar streams.
        batch = BatchSampler(compiled, (None, 2**40 + 9, None))
        scalar = PatternSampler(compiled, seed=2**40 + 9)
        for _ in range(2):
            drawn = batch.sample(10)
            assert_patterns_equal([drawn[1]], [scalar.sample(10)])
            for pattern in drawn:
                assert 1 <= len(pattern.symbols) <= 10
                walk = compiled.source.walk_probability(pattern.symbols)
                assert walk > 0.0


class TestScalarFallback:
    def test_env_var_forces_scalar_path(self, compiled, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert numpy_or_none() is None
        assert not numpy_available()
        batch = BatchSampler(compiled, SEED_MATRIX)
        assert batch.used_numpy is False
        scalars = [
            PatternSampler(compiled, seed=seed) for seed in SEED_MATRIX
        ]
        assert_patterns_equal(
            batch.sample(11), [sampler.sample(11) for sampler in scalars]
        )

    def test_env_var_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "0")
        # "0" and "" are the documented falsy values for the kill
        # switch; whether numpy then loads depends on the machine.
        assert numpy_available() == (numpy_or_none() is not None)

    def test_use_numpy_false_forces_fallback(self, compiled):
        batch = BatchSampler(compiled, (5, 2**40), use_numpy=False)
        assert batch.used_numpy is False
        scalars = [
            PatternSampler(compiled, seed=seed) for seed in (5, 2**40)
        ]
        assert_patterns_equal(
            batch.sample(9), [sampler.sample(9) for sampler in scalars]
        )

    def test_explicit_request_raises_config_error(
        self, compiled, monkeypatch
    ):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        with pytest.raises(ConfigError, match="requires numpy"):
            BatchSampler(compiled, (1, 2), use_numpy=True)
        with pytest.raises(ConfigError, match=NO_NUMPY_ENV):
            require_numpy("test context")

    def test_executor_rejects_explicit_batch_request(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        executor = CellExecutor(workers=2, batch_sampling=True)
        builders = {"spin": scenario_ref("clean_spin", tasks=2)}
        cells = [WorkCell(variant="spin", seed=0)]
        with pytest.raises(
            ConfigError, match=r"CellExecutor\(batch_sampling=True\)"
        ):
            executor.run_cells(builders, cells)

    def test_campaign_rejects_explicit_batch_request(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        campaign = Campaign(
            seeds=(0, 1), workers=2, batch_sampling=True
        )
        campaign.add_scenario("spin", "clean_spin", tasks=2)
        with pytest.raises(ConfigError, match="requires numpy"):
            campaign.run()


@pytest.mark.skipif(not numpy_available(), reason="needs numpy")
class TestPackedRows:
    def test_cached_on_the_compiled_instance(self, compiled):
        assert packed_rows(compiled) is packed_rows(compiled)
        assert compiled.__dict__["_packed_rows"] is packed_rows(compiled)

    def test_pickle_excludes_the_packing(self, compiled):
        packed_rows(compiled)
        clone = pickle.loads(pickle.dumps(compiled))
        assert "_packed_rows" not in clone.__dict__
        assert clone.symbols == compiled.symbols
        assert clone.cumulative == compiled.cumulative

    def test_packing_mirrors_the_compiled_rows(self, compiled):
        np = numpy_or_none()
        packed = packed_rows(compiled)
        assert packed.num_states == compiled.num_states
        assert packed.start == compiled.start
        for state in range(compiled.num_states):
            count = compiled.arc_count(state)
            assert packed.arc_count[state] == count
            assert bool(packed.is_absorbing[state]) == (
                compiled.is_absorbing(state)
            )
            assert packed.multi_step[state] == (1 if count > 1 else 0)
            row = packed.cumulative[state]
            assert row[:count].tolist() == list(compiled.cumulative[state])
            assert np.isinf(row[count:]).all()
        # The restart fusion: chosen arc -> post-redirect state in one
        # take, with absorbing states redirected to start.
        redirected = packed.restart_redirect[packed.flat_targets]
        assert (packed.restart_targets == redirected).all()

    def test_fused_rows_match_per_state_accessors(self, compiled):
        for state in range(compiled.num_states):
            count, symbols, targets, cumulative, log_probs = (
                compiled.rows[state]
            )
            assert count == len(compiled.symbols[state])
            assert symbols == compiled.symbols[state]
            assert targets == compiled.targets[state]
            assert cumulative == compiled.cumulative[state]
            assert log_probs == compiled.log_probs[state]


class TestSharedBatchBridge:
    def test_stream_matches_guard(self, compiled):
        shared = SharedPatternBatch(
            pfa=compiled, seeds=(2**40, 2**40 + 1), size=6
        )
        stream = shared.stream(0)
        assert stream.matches(shared.sampler.compiled, 2**40)
        assert not stream.matches(shared.sampler.compiled, 2**40 + 1)
        other = CompiledPFA.from_pfa(pcore_pfa())
        assert not stream.matches(other, 2**40)
        assert not stream.matches(None, 2**40)

    def test_size_mismatch_is_rejected(self, compiled):
        shared = SharedPatternBatch(pfa=compiled, seeds=(1, 2), size=6)
        with pytest.raises(
            ConfigError, match="built for size 6, cell requested 7"
        ):
            shared.next_pattern(0, 7)
        with pytest.raises(ConfigError, match="size must be >= 1"):
            SharedPatternBatch(pfa=compiled, seeds=(1,), size=0)

    def test_interleaved_cells_stay_on_their_scalar_streams(
        self, compiled
    ):
        seeds = (2**40 + 5, 11, -(2**35))
        shared = SharedPatternBatch(pfa=compiled, seeds=seeds, size=8)
        streams = [shared.stream(cell) for cell in range(len(seeds))]
        scalars = [PatternSampler(compiled, seed=seed) for seed in seeds]
        # Drain the cells in a deliberately unfair order: cell 0 far
        # ahead, then cell 2, then cell 1 catching up.  Each cell's
        # sequence must equal its own scalar sampler's regardless.
        order = [0, 0, 0, 2, 1, 0, 2, 2, 1, 1]
        expected = {
            cell: [
                scalars[cell].sample(8) for _ in range(order.count(cell))
            ]
            for cell in range(len(seeds))
        }
        progress = {cell: 0 for cell in range(len(seeds))}
        for cell in order:
            pattern = streams[cell].generate(8, pattern_id=progress[cell])
            want = expected[cell][progress[cell]]
            assert pattern.symbols == want.symbols
            assert pattern.states == want.states
            assert pattern.log_probability == want.log_probability
            progress[cell] += 1
        assert [stream.generated for stream in streams] == [
            order.count(cell) for cell in range(len(seeds))
        ]

    def test_prime_predraws_without_changing_output(self, compiled):
        seeds = (2**40 + 5, 11)
        primed = SharedPatternBatch(pfa=compiled, seeds=seeds, size=8)
        primed.prime(3)
        lazy = SharedPatternBatch(pfa=compiled, seeds=seeds, size=8)
        for cell in range(len(seeds)):
            for _ in range(3):
                drawn = primed.next_pattern(cell, 8)
                other = lazy.next_pattern(cell, 8)
                assert drawn.symbols == other.symbols
                assert drawn.log_probability == other.log_probability


class TestCampaignBitIdentity:
    @pytest.fixture(autouse=True)
    def _fresh_pools(self):
        shutdown_pools()
        yield
        shutdown_pools()

    def _campaign(self, workers, batch_sampling=None):
        campaign = Campaign(
            seeds=(0, 1, 2),
            workers=workers,
            batch_sampling=batch_sampling,
        )
        campaign.add_scenario("spin", "clean_spin", tasks=2, total_steps=40)
        campaign.add_scenario("phil", "philosophers", op="cyclic")
        return campaign

    def test_rows_identical_at_every_batch_setting(self):
        baseline = self._campaign(workers=1)
        rows = baseline.run()
        configs = [(2, None), (2, False)]
        if numpy_available():
            configs.append((2, True))
        for workers, batch_sampling in configs:
            campaign = self._campaign(workers, batch_sampling)
            assert campaign.run() == rows, (
                f"rows diverged at workers={workers}, "
                f"batch_sampling={batch_sampling}"
            )
            for variant in baseline.results:
                expected = baseline.results[variant]
                actual = campaign.results[variant]
                assert [r.patterns for r in actual] == [
                    r.patterns for r in expected
                ]
                assert [r.found_bug for r in actual] == [
                    r.found_bug for r in expected
                ]
                assert [
                    [a.kind for a in r.anomalies] for r in actual
                ] == [[a.kind for a in r.anomalies] for r in expected]
