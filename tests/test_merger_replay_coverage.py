"""Direct coverage for merger order functions and the replay module.

The burst/weighted order functions, ``register_merge_op`` error paths,
``parse_merged_description`` round-trips and :class:`ReplayRef` only
got incidental coverage through the pattern-merger integration tests;
this suite pins their contracts down directly — including the replay
refs' ride through the batch-table wire format and worker cache.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import ConfigError
from repro.ptest.merger import (
    MERGE_OPS,
    PatternMerger,
    _order_burst,
    _order_weighted,
    register_merge_op,
)
from repro.ptest.patterns import TestPattern
from repro.ptest.pool import (
    clear_worker_cache,
    make_batch_table,
    run_table_batch,
    worker_cache_info,
)
from repro.ptest.replay import ReplayRef, parse_merged_description, replay_ref
from repro.workloads.registry import ScenarioRegistry, scenario_ref


def make_patterns(symbol_lists) -> list[TestPattern]:
    return [
        TestPattern(pattern_id=index, symbols=tuple(symbols))
        for index, symbols in enumerate(symbol_lists)
    ]


class TestOrderBurst:
    def test_concatenates_whole_patterns_in_order(self):
        patterns = make_patterns([("TC", "TS"), ("TC",), ("TC", "TR", "TD")])
        order = _order_burst(patterns, random.Random(0), chunk=7)
        assert order == [0, 0, 1, 2, 2, 2]

    def test_zero_length_pattern_contributes_nothing(self):
        patterns = make_patterns([(), ("TC", "TD")])
        assert _order_burst(patterns, random.Random(0), chunk=1) == [1, 1]

    def test_merge_through_burst_preserves_sources(self):
        patterns = make_patterns([("TC", "TS"), ("TC", "TR")])
        merged = PatternMerger(op="burst").merge(patterns)
        assert [c.symbol for c in merged] == ["TC", "TS", "TC", "TR"]
        assert merged.per_pattern_counts() == {0: 2, 1: 2}


class TestOrderWeighted:
    def test_zero_weight_patterns_never_chosen(self):
        patterns = make_patterns([(), ("TC", "TS", "TD"), ()])
        order = _order_weighted(patterns, random.Random(3), chunk=1)
        assert order == [1, 1, 1]

    def test_all_empty_patterns_yield_empty_order(self):
        patterns = make_patterns([(), ()])
        assert _order_weighted(patterns, random.Random(0), chunk=1) == []

    def test_equal_weights_consume_both_fully_and_deterministically(self):
        patterns = make_patterns([("TC",) * 4, ("TS",) * 4])
        first = _order_weighted(patterns, random.Random(11), chunk=1)
        second = _order_weighted(patterns, random.Random(11), chunk=1)
        assert first == second
        assert first.count(0) == 4 and first.count(1) == 4

    def test_longer_patterns_weighted_heavier(self):
        # With remaining-length weights, a 9-symbol pattern should win
        # the first pick far more often than a 1-symbol pattern.
        patterns = make_patterns([("TC",) * 9, ("TS",)])
        firsts = [
            _order_weighted(patterns, random.Random(seed), chunk=1)[0]
            for seed in range(100)
        ]
        assert firsts.count(0) > 75

    def test_merge_through_weighted_is_a_valid_interleaving(self):
        patterns = make_patterns([("TC", "TS", "TR"), ("TC", "TD")])
        merged = PatternMerger(op="weighted", seed=5).merge(patterns)
        merged.validate()
        assert merged.per_pattern_counts() == {0: 3, 1: 2}


class TestRegisterMergeOp:
    def test_duplicate_name_rejected(self):
        def order(patterns, rng, chunk):  # pragma: no cover - never runs
            return []

        name = "coverage_test_op"
        register_merge_op(name, order)
        try:
            with pytest.raises(ConfigError, match="already registered"):
                register_merge_op(name, order)
        finally:
            del MERGE_OPS[name]

    def test_builtin_names_are_protected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_merge_op("burst", _order_burst)


class TestParseMergedDescription:
    @pytest.mark.parametrize(
        "op", ["round_robin", "random", "cyclic", "burst", "weighted"]
    )
    def test_round_trip_through_every_merge_op(self, op):
        patterns = make_patterns(
            [("TC", "TS", "TR"), ("TC", "TD"), ("TC", "TCH", "TS", "TR")]
        )
        merged = PatternMerger(op=op, seed=7, chunk=2).merge(patterns)
        parsed = parse_merged_description(merged.describe())
        assert parsed.describe() == merged.describe()
        assert [c.symbol for c in parsed] == [c.symbol for c in merged]
        assert [p.symbols for p in parsed.sources] == [
            p.symbols for p in patterns
        ]
        # A parsed pattern is re-mergeable: its sources flow straight
        # back into the merger (the ReplayFocus refinement path).
        remerged = PatternMerger(op="round_robin").merge(parsed.sources)
        remerged.validate()

    def test_round_trip_through_merge_symbols(self):
        merged = PatternMerger(op="cyclic", chunk=2).merge_symbols(
            [("TC", "TS"), ("TC", "TR")]
        )
        parsed = parse_merged_description(merged.describe())
        assert parsed.describe() == merged.describe()

    def test_unparseable_token_rejected(self):
        with pytest.raises(ConfigError, match="unparseable"):
            parse_merged_description("TC[p0#1] garbage")
        with pytest.raises(ConfigError, match="unparseable"):
            parse_merged_description("TC[p0]")

    def test_out_of_order_sequence_rejected(self):
        with pytest.raises(ConfigError, match="expected sequence"):
            parse_merged_description("TC[p0#2]")
        with pytest.raises(ConfigError, match="expected sequence"):
            parse_merged_description("TC[p0#1] TS[p0#3]")

    def test_empty_description_parses_to_empty_pattern(self):
        parsed = parse_merged_description("")
        assert len(parsed) == 0 and parsed.sources == []


class TestReplayRef:
    def detecting_description(self) -> str:
        result = scenario_ref("philosophers")(0).run()
        assert result.found_bug
        return result.report.merged_description

    def test_value_object_contract(self):
        base = scenario_ref("philosophers")
        description = self.detecting_description()
        ref = ReplayRef(scenario=base, description=description)
        twin = replay_ref(base, description)
        assert ref == twin
        assert hash(ref) == hash(twin)
        assert ref.portable
        assert ref.cache_key[0] == "replay"
        assert ref.cache_key != base.cache_key
        assert "replay(" in ref.describe()

    def test_pickle_round_trip_reparses_the_pattern(self):
        base = scenario_ref("philosophers")
        ref = replay_ref(base, self.detecting_description())
        loaded = pickle.loads(pickle.dumps(ref))
        assert loaded == ref
        # Unpickling defers the parse (workers only pay it on a cache
        # miss); the first merged() call parses and memoizes.
        assert loaded._merged is None
        assert loaded.merged().describe() == ref.merged().describe()
        assert loaded._merged is not None

    def test_replay_ref_accepts_live_merged_pattern(self):
        merged = PatternMerger(op="round_robin").merge_symbols(
            [("TC", "TS"), ("TC", "TR")]
        )
        ref = replay_ref(scenario_ref("philosophers"), merged)
        assert ref.description == merged.describe()

    def test_malformed_description_fails_at_construction(self):
        with pytest.raises(ConfigError, match="unparseable"):
            replay_ref(scenario_ref("philosophers"), "not a pattern")

    def test_non_ref_scenario_rejected(self):
        with pytest.raises(ConfigError, match="ScenarioRef"):
            ReplayRef(scenario="philosophers", description="TC[p0#1]")

    def test_non_adaptive_scenario_rejected_at_call(self):
        # philosophers_random builds a RandomTester, which has no
        # merged_override to replay into.
        ref = replay_ref(
            scenario_ref("philosophers_random"), "TC[p0#1]"
        )
        with pytest.raises(ConfigError, match="AdaptiveTest"):
            ref(0)

    def test_replay_reproduces_the_recorded_detection(self):
        base = scenario_ref("philosophers")
        original = base(0).run()
        ref = replay_ref(base, original.report.merged_description)
        for seed in (0, 1):
            replayed = ref(seed).run()
            assert replayed.found_bug
            assert (
                replayed.report.primary.kind
                is original.report.primary.kind
            )
            assert (
                replayed.report.merged_description
                == original.report.merged_description
            )


class TestReplayRefOnTheWire:
    def test_equal_replay_refs_collapse_to_one_table_entry(self):
        base = scenario_ref("philosophers")
        description = "TC[p0#1] TC[p1#1] TC[p2#1]"
        ref = replay_ref(base, description)
        twin = replay_ref(base, description)
        other = replay_ref(base, "TC[p0#1]")
        table, jobs = make_batch_table([ref, twin, other], [0, 1, 0])
        assert table == (ref, other)
        assert jobs == ((0, 0), (0, 1), (1, 0))

    def test_table_path_caches_parse_and_matches_direct_build(self):
        base = scenario_ref("philosophers")
        result = base(0).run()
        ref = replay_ref(base, result.report.merged_description)
        clear_worker_cache()
        try:
            results = run_table_batch((ref,), ((0, 0), (0, 1)))
            info = worker_cache_info()
            assert ref.cache_key in set(info["keys"])
            # Second job hit the cached parse + resolution.
            assert info["hits"][ref.cache_key] == 1
            direct = [ref(0).run(), ref(1).run()]
            assert [r.ticks for r in results] == [r.ticks for r in direct]
            assert [r.found_bug for r in results] == [
                r.found_bug for r in direct
            ]
        finally:
            clear_worker_cache()

    def test_replay_and_scenario_entries_coexist_in_the_cache(self):
        base = scenario_ref("philosophers")
        ref = replay_ref(base, base(0).run().report.merged_description)
        clear_worker_cache()
        try:
            run_table_batch((base, ref), ((0, 0), (1, 0)))
            keys = set(worker_cache_info()["keys"])
            assert base.cache_key in keys
            assert ref.cache_key in keys
        finally:
            clear_worker_cache()

    def test_bound_registry_replay_ref_runs_uncached(self):
        registry = ScenarioRegistry()

        @registry.register("phil_copy")
        def _phil(seed: int):
            from repro.workloads.scenarios import philosophers_case2

            return philosophers_case2(seed=seed)

        bound = registry.ref("phil_copy")
        ref = replay_ref(bound, "TC[p0#1] TC[p1#1] TC[p2#1]")
        assert not ref.portable
        clear_worker_cache()
        try:
            results = run_table_batch((ref,), ((0, 0),))
            assert worker_cache_info()["entries"] == 0
            assert len(results) == 1
        finally:
            clear_worker_cache()
